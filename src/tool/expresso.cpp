//===- tool/expresso.cpp - The expresso command-line compiler -----------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `expresso` CLI: reads an implicit-signal monitor (a .mon file, a
/// built-in benchmark, or stdin), infers a monitor invariant, runs signal
/// placement, and emits the explicit-signal artifact of choice — locally,
/// or through a resident `expressod` daemon (--connect) whose shared warm
/// caches make repeated compilations orders of magnitude cheaper while
/// keeping every artifact byte-identical.
///
///   expresso examples/monitors/rwlock.mon --emit=cpp
///   expresso --benchmark=BoundedBuffer --emit=java
///   expresso --benchmark=ReadersWriters --emit=ir --solver=mini
///   expresso --connect=/tmp/expressod.sock --benchmark=BoundedBuffer
///   expresso cache fsck qcache
///
//===----------------------------------------------------------------------===//

#include "bench/Workloads.h"
#include "codegen/Codegen.h"
#include "core/SignalPlacement.h"
#include "frontend/Parser.h"
#include "logic/Printer.h"
#include "obs/Trace.h"
#include "persist/QueryStore.h"
#include "service/Client.h"
#include "solver/SolverRig.h"
#include "specgen/SpecGen.h"
#include "support/CancelToken.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

using namespace expresso;

namespace {

void printUsage() {
  std::fprintf(
      stderr,
      "usage: expresso [options] <monitor.mon | ->\n"
      "       expresso cache <fsck|warm|compact> <dir> [args...]\n"
      "       expresso specgen [--seed=N --ccrs=N ...]   (see specgen --help)\n"
      "\n"
      "Transforms an implicit-signal monitor into an explicit-signal one\n"
      "(PLDI'18 \"Symbolic Reasoning for Automatic Signal Placement\").\n"
      "\n"
      "options:\n"
      "  --emit=summary|ir|cpp|java   artifact to print (default: summary)\n"
      "  --solver=default|z3|mini|crosscheck\n"
      "  --benchmark=NAME             use a built-in evaluation monitor\n"
      "  --list-benchmarks            list built-in monitors and exit\n"
      "  --invariant=EXPR-FILE        skip inference, read invariant source\n"
      "  --no-invariant               place signals with I = true\n"
      "  --no-commutativity           disable the §4.3 weakening\n"
      "  --no-lazy-broadcast          emit eager signalAll broadcasts\n"
      "  --no-cache                   disable solver query memoization\n"
      "  --incremental=on|off         discharge VCs through incremental\n"
      "                               solver sessions (push/pop prefixes,\n"
      "                               batched no-signal checks; default on)\n"
      "                               vs one solver context per query; the\n"
      "                               output is byte-identical either way\n"
      "  --cache-dir=DIR              persist solver answers in DIR and\n"
      "                               reuse answers cached by earlier runs\n"
      "                               (shared safely across processes)\n"
      "  --cache-readonly             consult --cache-dir but never write it\n"
      "  --cache-max-bytes=N          evict least-recently-used records\n"
      "                               beyond N bytes when the store compacts\n"
      "                               (compaction runs at end of this run)\n"
      "  --cache-ttl=SECONDS          evict records unused for SECONDS at\n"
      "                               compaction\n"
      "  --jobs N                     placement worker threads (also\n"
      "                               --jobs=N; \"auto\" = one per core;\n"
      "                               default 1 = serial)\n"
      "  --deadline=SECONDS           give up if placement runs past the\n"
      "                               deadline (exit 1; a run finishing in\n"
      "                               time is byte-identical to one with no\n"
      "                               deadline). With --connect the daemon\n"
      "                               enforces it and answers\n"
      "                               DeadlineExceeded\n"
      "  --trace-out=FILE             write a Chrome trace_event JSON of\n"
      "                               this run (phase spans, Houdini\n"
      "                               rounds, per-CCR placement, solver\n"
      "                               queries with cache tier); load in\n"
      "                               Perfetto/chrome://tracing or summarize\n"
      "                               with scripts/trace_summary.py. With\n"
      "                               --connect the daemon records the\n"
      "                               trace and ships it back. Tracing\n"
      "                               never changes the artifact or any\n"
      "                               counter\n"
      "\n"
      "daemon client mode (the spec is analyzed by a resident expressod\n"
      "with shared warm caches; artifacts stay byte-identical to local\n"
      "runs):\n"
      "  --connect=SOCKET             send this request to the daemon\n"
      "  --priority=normal|high       scheduling priority (daemon queue)\n"
      "  --no-result-cache            bypass the daemon's whole-response\n"
      "                               replay cache (query store still warm)\n"
      "  --daemon-status              print daemon status and exit\n"
      "  --daemon-metrics             print the daemon's metrics registry\n"
      "                               (counters, gauges, latency histogram)\n"
      "                               as stable text and exit\n"
      "  --shutdown[=drain|now]       ask the daemon to exit (default:\n"
      "                               drain queued work first)\n"
      "\n"
      "cache subcommands (see docs/ARCHITECTURE.md, persistence layer):\n"
      "  cache fsck <dir> [--profile=NAME] [--drop-bad]\n"
      "        validate header/checksums/records/keys; --drop-bad rewrites\n"
      "        the log keeping only fully valid records\n"
      "  cache warm <dir> [--solver=NAME] [--jobs=N] <spec|--benchmark=B>...\n"
      "        pre-populate a store by analyzing specs (no artifact output)\n"
      "  cache compact <dir> [--profile=NAME] [--cache-max-bytes=N]\n"
      "                [--cache-ttl=SECONDS]\n"
      "        rewrite the log deduplicated, enforcing the eviction policy\n");
}

/// Parses a --jobs value: a positive count or "auto"; 0 means invalid.
unsigned parseJobs(const char *Value) {
  if (std::strcmp(Value, "auto") == 0)
    return support::ThreadPool::defaultWorkers();
  int N = std::atoi(Value);
  return N > 0 ? static_cast<unsigned>(N) : 0;
}

/// Writes a Chrome trace JSON blob to \p Path. False with a diagnostic
/// printed.
bool writeTraceFile(const std::string &Path, const std::string &Json) {
  std::ofstream Out(Path, std::ios::trunc);
  if (!Out) {
    std::fprintf(stderr, "cannot write trace file %s\n", Path.c_str());
    return false;
  }
  Out << Json;
  return true;
}

/// Reads a spec from a benchmark name, a path, or "-" (stdin). Returns
/// false with a diagnostic printed.
bool loadSource(const std::string &BenchName, const std::string &InputPath,
                std::string &Source) {
  if (!BenchName.empty()) {
    const bench::BenchmarkDef *Def = bench::findBenchmark(BenchName);
    if (!Def) {
      std::fprintf(stderr, "unknown benchmark '%s' (try --list-benchmarks)\n",
                   BenchName.c_str());
      return false;
    }
    Source = Def->Source;
    return true;
  }
  if (InputPath == "-") {
    std::ostringstream Buf;
    Buf << std::cin.rdbuf();
    Source = Buf.str();
    return true;
  }
  if (!InputPath.empty()) {
    std::ifstream In(InputPath);
    if (!In) {
      std::fprintf(stderr, "cannot open %s\n", InputPath.c_str());
      return false;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Source = Buf.str();
    return true;
  }
  return false;
}

//===----------------------------------------------------------------------===//
// cache subcommand
//===----------------------------------------------------------------------===//

int cacheFsck(int Argc, char **Argv) {
  std::string Dir, Profile;
  bool DropBad = false;
  for (int I = 0; I < Argc; ++I) {
    const char *Arg = Argv[I];
    if (std::strncmp(Arg, "--profile=", 10) == 0)
      Profile = Arg + 10;
    else if (std::strcmp(Arg, "--drop-bad") == 0)
      DropBad = true;
    else if (Arg[0] == '-') {
      std::fprintf(stderr, "cache fsck: unknown option %s\n", Arg);
      return 2;
    } else if (Dir.empty())
      Dir = Arg;
    else {
      std::fprintf(stderr, "cache fsck: extra argument %s\n", Arg);
      return 2;
    }
  }
  if (Dir.empty()) {
    std::fprintf(stderr, "usage: expresso cache fsck <dir> "
                         "[--profile=NAME] [--drop-bad]\n");
    return 2;
  }
  persist::FsckReport Report;
  std::string Error;
  if (!persist::QueryStore::fsck(Dir, Profile, DropBad, Report, &Error)) {
    std::fprintf(stderr, "cache fsck: %s\n", Error.c_str());
    return 2;
  }
  std::printf("store %s:\n", Dir.c_str());
  std::printf("  header:           %s (profile '%s')\n",
              Report.HeaderOk ? "ok" : "INVALID", Report.Profile.c_str());
  std::printf("  records:          %llu valid (%llu duplicate keys)\n",
              static_cast<unsigned long long>(Report.GoodRecords),
              static_cast<unsigned long long>(Report.DuplicateKeys));
  std::printf("  undecodable keys: %llu\n",
              static_cast<unsigned long long>(Report.UndecodableKeys));
  std::printf("  bytes:            %llu total, %llu bad\n",
              static_cast<unsigned long long>(Report.TotalBytes),
              static_cast<unsigned long long>(Report.BadBytes));
  if (!Report.Problem.empty())
    std::printf("  problem:          %s\n", Report.Problem.c_str());
  if (Report.Rewritten)
    std::printf("  repaired:         log rewritten with only valid records\n");
  if (Report.clean() || Report.Rewritten) {
    std::printf("  verdict:          clean\n");
    return 0;
  }
  std::printf("  verdict:          UNCLEAN (rerun with --drop-bad to "
              "repair)\n");
  return 1;
}

int cacheWarm(int Argc, char **Argv) {
  std::string Dir, SolverName = "default";
  unsigned Jobs = 1;
  struct Spec {
    std::string Label;
    std::string Source;
  };
  std::vector<Spec> Specs;
  for (int I = 0; I < Argc; ++I) {
    const char *Arg = Argv[I];
    if (std::strncmp(Arg, "--solver=", 9) == 0) {
      SolverName = Arg + 9;
    } else if (std::strncmp(Arg, "--benchmark=", 12) == 0) {
      Spec S;
      S.Label = Arg + 12;
      if (!loadSource(S.Label, "", S.Source))
        return 2;
      Specs.push_back(std::move(S));
    } else if (std::strncmp(Arg, "--jobs=", 7) == 0) {
      Jobs = parseJobs(Arg + 7);
      if (Jobs == 0) {
        std::fprintf(stderr, "cache warm: bad --jobs value\n");
        return 2;
      }
    } else if (Arg[0] == '-') {
      std::fprintf(stderr, "cache warm: unknown option %s\n", Arg);
      return 2;
    } else if (Dir.empty()) {
      Dir = Arg;
    } else {
      Spec S;
      S.Label = Arg;
      if (!loadSource("", Arg, S.Source))
        return 2;
      Specs.push_back(std::move(S));
    }
  }
  if (Dir.empty() || Specs.empty()) {
    std::fprintf(stderr, "usage: expresso cache warm <dir> [--solver=NAME] "
                         "[--jobs=N] <spec.mon|--benchmark=NAME>...\n");
    return 2;
  }

  solver::SolverKind Kind = solver::parseSolverKind(SolverName);
  // Resolve the store profile exactly like an analysis run would.
  std::string Profile = solver::backendProfileName(Kind);
  if (Profile.empty()) {
    std::fprintf(stderr, "cache warm: solver backend '%s' is not "
                         "available in this build\n",
                 SolverName.c_str());
    return 2;
  }
  std::shared_ptr<persist::QueryStore> Store =
      persist::QueryStore::openReportingWarnings(Dir, /*ReadOnly=*/false,
                                                 Profile,
                                                 /*CacheEnabled=*/true);
  if (!Store) {
    std::fprintf(stderr, "cache warm: cannot open %s\n", Dir.c_str());
    return 2;
  }

  for (const Spec &S : Specs) {
    size_t Before = Store->size();
    logic::TermContext C;
    DiagnosticEngine Diags;
    auto M = frontend::parseMonitor(S.Source, Diags);
    if (!M) {
      std::fprintf(stderr, "cache warm: %s failed to parse:\n%s",
                   S.Label.c_str(), Diags.str().c_str());
      return 1;
    }
    auto Sema = frontend::analyze(*M, C, Diags);
    if (!Sema) {
      std::fprintf(stderr, "cache warm: %s failed sema:\n%s", S.Label.c_str(),
                   Diags.str().c_str());
      return 1;
    }
    solver::SolverRig Rig = solver::buildSolverRig(C, Kind,
                                                   /*CacheQueries=*/true,
                                                   Store);
    core::PlacementOptions Opts;
    Opts.Jobs = Jobs;
    Opts.WorkerSolvers = solver::SolverFactory(Kind);
    WallTimer Timer;
    core::PlacementResult Result = core::placeSignals(C, *Sema, Rig.solver(),
                                                      Opts);
    std::printf("warmed %-28s %6.2fs  %zu solver queries, store %zu -> %zu "
                "records\n",
                S.Label.c_str(), Timer.elapsedSeconds(),
                Result.Stats.SolverQueries, Before, Store->size());
  }
  return 0;
}

int cacheCompact(int Argc, char **Argv) {
  std::string Dir, Profile;
  persist::EvictionPolicy Policy;
  for (int I = 0; I < Argc; ++I) {
    const char *Arg = Argv[I];
    if (std::strncmp(Arg, "--profile=", 10) == 0)
      Profile = Arg + 10;
    else if (std::strncmp(Arg, "--cache-max-bytes=", 18) == 0)
      Policy.MaxBytes = std::strtoull(Arg + 18, nullptr, 10);
    else if (std::strncmp(Arg, "--cache-ttl=", 12) == 0)
      Policy.TtlSeconds = std::atoll(Arg + 12);
    else if (Arg[0] == '-') {
      std::fprintf(stderr, "cache compact: unknown option %s\n", Arg);
      return 2;
    } else if (Dir.empty())
      Dir = Arg;
    else {
      std::fprintf(stderr, "cache compact: extra argument %s\n", Arg);
      return 2;
    }
  }
  if (Dir.empty()) {
    std::fprintf(stderr, "usage: expresso cache compact <dir> "
                         "[--profile=NAME] [--cache-max-bytes=N] "
                         "[--cache-ttl=SECONDS]\n");
    return 2;
  }
  if (Profile.empty()) {
    // Default to whatever the log says, so compaction never rotates a
    // store aside just because this build prefers another backend.
    persist::FsckReport Report;
    std::string Error;
    if (!persist::QueryStore::fsck(Dir, "", /*DropBad=*/false, Report,
                                   &Error)) {
      std::fprintf(stderr, "cache compact: %s\n", Error.c_str());
      return 2;
    }
    if (!Report.HeaderOk) {
      std::fprintf(stderr, "cache compact: %s (run cache fsck)\n",
                   Report.Problem.c_str());
      return 1;
    }
    Profile = Report.Profile;
  }
  persist::QueryStore::Options Opts;
  Opts.Profile = Profile;
  std::string Error;
  std::shared_ptr<persist::QueryStore> Store =
      persist::QueryStore::open(Dir, Opts, &Error);
  if (!Store) {
    std::fprintf(stderr, "cache compact: %s\n", Error.c_str());
    return 2;
  }
  Store->setEvictionPolicy(Policy);
  size_t Before = Store->size();
  if (!Store->compact(&Error)) {
    std::fprintf(stderr, "cache compact: %s\n", Error.c_str());
    return 1;
  }
  persist::StoreStats S = Store->stats();
  std::printf("compacted %s: %zu -> %zu records (%llu evicted: %llu ttl, "
              "%llu size)\n",
              Dir.c_str(), Before, Store->size(),
              static_cast<unsigned long long>(S.evicted()),
              static_cast<unsigned long long>(S.EvictedTtl),
              static_cast<unsigned long long>(S.EvictedSize));
  return 0;
}

int cacheMain(int Argc, char **Argv) {
  if (Argc < 1) {
    std::fprintf(stderr, "usage: expresso cache <fsck|warm|compact> <dir> "
                         "[args...]\n");
    return 2;
  }
  const char *Sub = Argv[0];
  if (std::strcmp(Sub, "fsck") == 0)
    return cacheFsck(Argc - 1, Argv + 1);
  if (std::strcmp(Sub, "warm") == 0)
    return cacheWarm(Argc - 1, Argv + 1);
  if (std::strcmp(Sub, "compact") == 0)
    return cacheCompact(Argc - 1, Argv + 1);
  std::fprintf(stderr, "unknown cache subcommand '%s' (fsck, warm, "
                       "compact)\n",
               Sub);
  return 2;
}

//===----------------------------------------------------------------------===//
// Spec generation subcommand
//===----------------------------------------------------------------------===//

/// `expresso specgen`: print a generated monitor spec to stdout. The same
/// generator powers the expresso-diff fuzz rig and the checked-in corpus;
/// this subcommand regenerates any of their specs from a config string.
int specgenMain(int Argc, char **Argv) {
  specgen::GenConfig Config;
  bool Check = false;
  auto parseU = [](const char *V, unsigned &Out) {
    char *End = nullptr;
    unsigned long N = std::strtoul(V, &End, 10);
    if (End == V || *End != '\0')
      return false;
    Out = static_cast<unsigned>(N);
    return true;
  };
  for (int I = 0; I < Argc; ++I) {
    const char *Arg = Argv[I];
    unsigned U = 0;
    if (std::strncmp(Arg, "--seed=", 7) == 0) {
      Config.Seed = std::strtoull(Arg + 7, nullptr, 10);
    } else if (std::strncmp(Arg, "--ccrs=", 7) == 0 && parseU(Arg + 7, U)) {
      Config.Ccrs = U;
    } else if (std::strncmp(Arg, "--ccrs-per-method=", 18) == 0 &&
               parseU(Arg + 18, U)) {
      Config.MaxCcrsPerMethod = U;
    } else if (std::strncmp(Arg, "--depth=", 8) == 0 && parseU(Arg + 8, U)) {
      Config.PredicateDepth = U;
    } else if (std::strncmp(Arg, "--fan-in=", 9) == 0 && parseU(Arg + 9, U)) {
      Config.FanIn = U;
    } else if (std::strncmp(Arg, "--ints=", 7) == 0 && parseU(Arg + 7, U)) {
      Config.IntFields = U;
    } else if (std::strncmp(Arg, "--bools=", 8) == 0 && parseU(Arg + 8, U)) {
      Config.BoolFields = U;
    } else if (std::strncmp(Arg, "--stmts=", 8) == 0 && parseU(Arg + 8, U)) {
      Config.BodyStmts = U;
    } else if (std::strncmp(Arg, "--shape=", 8) == 0) {
      if (!specgen::parseGuardShape(Arg + 8, Config.Shape)) {
        std::fprintf(stderr, "unknown --shape '%s' (comparison, arithmetic, "
                             "boolean, mixed)\n",
                     Arg + 8);
        return 2;
      }
    } else if (std::strcmp(Arg, "--loops") == 0) {
      Config.AllowLoops = true;
    } else if (std::strcmp(Arg, "--no-params") == 0) {
      Config.AllowParams = false;
    } else if (std::strcmp(Arg, "--no-const") == 0) {
      Config.ConstConfig = false;
    } else if (std::strncmp(Arg, "--name=", 7) == 0) {
      Config.Name = Arg + 7;
    } else if (std::strncmp(Arg, "--config=", 9) == 0) {
      std::string Error;
      if (!specgen::configFromString(Arg + 9, Config, &Error)) {
        std::fprintf(stderr, "bad --config: %s\n", Error.c_str());
        return 2;
      }
    } else if (std::strcmp(Arg, "--check") == 0) {
      Check = true;
    } else if (std::strcmp(Arg, "--help") == 0 || std::strcmp(Arg, "-h") == 0) {
      std::fprintf(
          stderr,
          "usage: expresso specgen [options]\n"
          "Prints a deterministically generated monitor spec to stdout\n"
          "(same seed + knobs => byte-identical spec).\n"
          "  --seed=N --ccrs=N --ccrs-per-method=N --depth=N --fan-in=N\n"
          "  --ints=N --bools=N --stmts=N --shape=SHAPE --loops\n"
          "  --no-params --no-const --name=STR\n"
          "  --config=STR   full key=value,... config (see header comment\n"
          "                 in generated corpus files); overrides knobs so\n"
          "                 far, later flags still apply\n"
          "  --check        also parse + semantically check the generated\n"
          "                 spec and verify the config round-trips; exits\n"
          "                 nonzero on any failure\n");
      return 0;
    } else {
      std::fprintf(stderr, "unknown specgen option '%s' (try --help)\n", Arg);
      return 2;
    }
  }

  Config.normalize();
  std::string Source = specgen::generateMonitorSource(Config);
  std::string ConfigStr = specgen::configToString(Config);
  std::printf("// expresso specgen --config=%s\n%s", ConfigStr.c_str(),
              Source.c_str());

  if (Check) {
    specgen::GenConfig RoundTrip;
    std::string Error;
    if (!specgen::configFromString(ConfigStr, RoundTrip, &Error) ||
        !(RoundTrip == Config)) {
      std::fprintf(stderr, "specgen: config round-trip failed: %s\n",
                   Error.c_str());
      return 1;
    }
    DiagnosticEngine Diags;
    auto M = frontend::parseMonitor(Source, Diags);
    if (!M) {
      std::fprintf(stderr, "specgen: generated spec does not parse\n%s",
                   Diags.str().c_str());
      return 1;
    }
    logic::TermContext C;
    if (!frontend::analyze(*M, C, Diags)) {
      std::fprintf(stderr, "specgen: generated spec fails sema\n%s",
                   Diags.str().c_str());
      return 1;
    }
    std::fprintf(stderr, "specgen: ok (parses, passes sema)\n");
  }
  return 0;
}

//===----------------------------------------------------------------------===//
// Daemon client mode
//===----------------------------------------------------------------------===//

/// Sends the assembled request to an expressod and prints the response the
/// way a local run would print its artifact. The artifact bytes (and for
/// --emit=summary everything up to the statistics trailer) are
/// byte-identical to a local run; the trailer reports daemon-side stats.
int runConnected(const std::string &SocketPath,
                 const service::PlaceRequest &Req, const std::string &Emit,
                 double DeadlineSeconds, const std::string &TraceOutPath) {
  std::string Error;
  std::unique_ptr<service::ServiceClient> Client =
      service::ServiceClient::connect(SocketPath, &Error);
  if (!Client) {
    std::fprintf(stderr, "cannot reach expressod: %s\n", Error.c_str());
    return 1;
  }
  // A deadline also bounds the wait for the *reply*: if the daemon wedges
  // outright, the client times out instead of hanging forever. The slack
  // covers the daemon's cooperative wind-down (a solver poll interval) and
  // the response's trip back.
  if (DeadlineSeconds > 0)
    Client->setReceiveTimeout(DeadlineSeconds + 5.0);
  service::PlaceResponse R;
  if (!Client->place(Req, R, &Error)) {
    std::fprintf(stderr, "expressod request failed: %s\n", Error.c_str());
    return 1;
  }
  if (R.Status == service::ResponseStatus::DeadlineExceeded) {
    std::fprintf(stderr,
                 "expressod: %s (%llu hoare checks, %llu queries before "
                 "cancellation)\n",
                 R.Error.empty() ? "deadline exceeded" : R.Error.c_str(),
                 static_cast<unsigned long long>(R.HoareChecks),
                 static_cast<unsigned long long>(R.SolverQueries));
    return 1;
  }
  if (R.Status != service::ResponseStatus::Ok) {
    std::fprintf(stderr, "expressod: %s\n",
                 R.Error.empty() ? "request failed" : R.Error.c_str());
    return 1;
  }
  std::fputs(R.Artifact.c_str(), stdout);
  if (Emit != "cpp" && Emit != "java" && Emit != "ir") {
    std::printf("\nstatistics (served by expressod):\n");
    std::printf("  solver backend:       %s\n", R.SolverName.c_str());
    std::printf("  hoare checks:         %llu\n",
                static_cast<unsigned long long>(R.HoareChecks));
    std::printf("  solver queries:       %llu\n",
                static_cast<unsigned long long>(R.SolverQueries));
    double HitRate = R.CacheHits + R.CacheMisses == 0
                         ? 0.0
                         : 100.0 * static_cast<double>(R.CacheHits) /
                               static_cast<double>(R.CacheHits +
                                                   R.CacheMisses);
    std::printf("  query cache:          %llu hits / %llu misses (%.0f%%)\n",
                static_cast<unsigned long long>(R.CacheHits),
                static_cast<unsigned long long>(R.CacheMisses), HitRate);
    double SharedRate = R.SharedHits + R.SharedMisses == 0
                            ? 0.0
                            : 100.0 * static_cast<double>(R.SharedHits) /
                                  static_cast<double>(R.SharedHits +
                                                      R.SharedMisses);
    std::printf("  shared warm cache:    %llu hits / %llu misses (%.0f%%)%s\n",
                static_cast<unsigned long long>(R.SharedHits),
                static_cast<unsigned long long>(R.SharedMisses), SharedRate,
                R.StoreSkipped ? " [store skipped: profile mismatch]" : "");
    std::printf("  pairs proved silent:  %llu / %llu\n",
                static_cast<unsigned long long>(R.NoSignalProved),
                static_cast<unsigned long long>(R.PairsConsidered));
    std::printf("  signals / broadcasts: %llu / %llu\n",
                static_cast<unsigned long long>(R.Signals),
                static_cast<unsigned long long>(R.Broadcasts));
    std::printf("  unconditional:        %llu\n",
                static_cast<unsigned long long>(R.Unconditional));
    std::printf("  §4.3 wins:            %llu\n",
                static_cast<unsigned long long>(R.CommutativityWins));
    std::printf("  analysis time:        %.2fs (invariant %.2fs, queue "
                "%.2fs)\n",
                R.AnalysisSeconds, R.InvariantSeconds, R.QueueSeconds);
    std::printf("  placement jobs:       %u\n", R.JobsUsed);
    std::printf("  replayed:             %s\n", R.Replayed ? "yes" : "no");
  }
  if (!TraceOutPath.empty()) {
    if (R.TraceJson.empty()) {
      std::fprintf(stderr, "expressod returned no trace (pre-v3 daemon?)\n");
    } else {
      if (!writeTraceFile(TraceOutPath, R.TraceJson))
        return 1;
      std::fprintf(stderr, "trace %llu written to %s\n",
                   static_cast<unsigned long long>(R.TraceId),
                   TraceOutPath.c_str());
    }
  }
  return 0;
}

int runDaemonMetrics(const std::string &SocketPath) {
  std::string Error;
  std::unique_ptr<service::ServiceClient> Client =
      service::ServiceClient::connect(SocketPath, &Error);
  if (!Client) {
    std::fprintf(stderr, "cannot reach expressod: %s\n", Error.c_str());
    return 1;
  }
  std::string Text;
  if (!Client->metrics(Text, &Error)) {
    std::fprintf(stderr, "expressod metrics failed: %s\n", Error.c_str());
    return 1;
  }
  std::fputs(Text.c_str(), stdout);
  return 0;
}

int runDaemonStatus(const std::string &SocketPath) {
  std::string Error;
  std::unique_ptr<service::ServiceClient> Client =
      service::ServiceClient::connect(SocketPath, &Error);
  if (!Client) {
    std::fprintf(stderr, "cannot reach expressod: %s\n", Error.c_str());
    return 1;
  }
  service::StatusResponse S;
  if (!Client->status(S, &Error)) {
    std::fprintf(stderr, "expressod status failed: %s\n", Error.c_str());
    return 1;
  }
  std::printf("expressod on %s:\n", SocketPath.c_str());
  std::printf("  uptime:           %.1fs%s\n", S.UptimeSeconds,
              S.Draining ? " (draining)" : "");
  std::printf("  requests:         %llu served, %llu active, %llu queued, "
              "%llu rejected\n",
              static_cast<unsigned long long>(S.RequestsServed),
              static_cast<unsigned long long>(S.RequestsActive),
              static_cast<unsigned long long>(S.RequestsQueued),
              static_cast<unsigned long long>(S.RequestsRejected));
  std::printf("  outcomes:         %llu completed, %llu expired queued, "
              "%llu cancelled running\n",
              static_cast<unsigned long long>(S.RequestsCompleted),
              static_cast<unsigned long long>(S.RequestsExpiredQueued),
              static_cast<unsigned long long>(S.RequestsCancelledRunning));
  std::printf("  admission:        %llu rejected (%llu queue full, %llu "
              "draining)\n",
              static_cast<unsigned long long>(S.RequestsRejected),
              static_cast<unsigned long long>(S.RequestsRejectedFull),
              static_cast<unsigned long long>(S.RequestsRejectedDraining));
  std::printf("  latency:          p50 %.3fs, p99 %.3fs\n",
              S.LatencyP50Seconds, S.LatencyP99Seconds);
  std::printf("  replay cache:     %llu hits\n",
              static_cast<unsigned long long>(S.ResultCacheHits));
  std::printf("  shared store:     %llu records (%llu evicted), profile "
              "'%s', %s\n",
              static_cast<unsigned long long>(S.StoreRecords),
              static_cast<unsigned long long>(S.StoreEvicted),
              S.StoreProfile.c_str(),
              S.StoreDir.empty() ? "in-memory" : S.StoreDir.c_str());
  std::printf("  jobs budget:      %u total, %u available\n", S.JobsBudget,
              S.JobsAvailable);
  return 0;
}

int runDaemonShutdown(const std::string &SocketPath, bool Drain) {
  std::string Error;
  std::unique_ptr<service::ServiceClient> Client =
      service::ServiceClient::connect(SocketPath, &Error);
  if (!Client) {
    std::fprintf(stderr, "cannot reach expressod: %s\n", Error.c_str());
    return 1;
  }
  if (!Client->shutdown(Drain, &Error)) {
    std::fprintf(stderr, "expressod shutdown failed: %s\n", Error.c_str());
    return 1;
  }
  std::printf("expressod acknowledged shutdown (%s)\n",
              Drain ? "drain" : "immediate");
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc >= 2 && std::strcmp(Argv[1], "cache") == 0)
    return cacheMain(Argc - 2, Argv + 2);
  if (Argc >= 2 && std::strcmp(Argv[1], "specgen") == 0)
    return specgenMain(Argc - 2, Argv + 2);

  std::string EmitKind = "summary";
  std::string SolverName = "default";
  std::string BenchName;
  std::string InputPath;
  std::string CacheDir;
  std::string ConnectPath;
  bool CacheReadOnly = false;
  persist::EvictionPolicy Eviction;
  core::PlacementOptions Options;
  bool ListBenchmarks = false;
  service::Priority Prio = service::Priority::Normal;
  bool NoResultCache = false;
  bool WantDaemonStatus = false;
  bool WantDaemonMetrics = false;
  bool WantShutdown = false;
  bool ShutdownDrain = true;
  double DeadlineSeconds = 0;
  std::string TraceOutPath;

  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    if (std::strncmp(Arg, "--emit=", 7) == 0) {
      EmitKind = Arg + 7;
    } else if (std::strncmp(Arg, "--solver=", 9) == 0) {
      SolverName = Arg + 9;
    } else if (std::strncmp(Arg, "--benchmark=", 12) == 0) {
      BenchName = Arg + 12;
    } else if (std::strcmp(Arg, "--list-benchmarks") == 0) {
      ListBenchmarks = true;
    } else if (std::strcmp(Arg, "--no-invariant") == 0) {
      Options.UseInvariant = false;
    } else if (std::strcmp(Arg, "--no-commutativity") == 0) {
      Options.UseCommutativity = false;
    } else if (std::strcmp(Arg, "--no-lazy-broadcast") == 0) {
      Options.LazyBroadcast = false;
    } else if (std::strcmp(Arg, "--no-cache") == 0) {
      Options.CacheQueries = false;
    } else if (std::strncmp(Arg, "--incremental=", 14) == 0 ||
               std::strcmp(Arg, "--incremental") == 0) {
      const char *Value = Arg[13] == '=' ? Arg + 14
                          : I + 1 < Argc ? Argv[++I]
                                         : "";
      if (std::strcmp(Value, "on") == 0) {
        Options.Incremental = true;
      } else if (std::strcmp(Value, "off") == 0) {
        Options.Incremental = false;
      } else {
        std::fprintf(stderr, "--incremental expects on|off (got '%s')\n",
                     Value);
        return 1;
      }
    } else if (std::strncmp(Arg, "--cache-dir=", 12) == 0) {
      CacheDir = Arg + 12;
    } else if (std::strcmp(Arg, "--cache-readonly") == 0) {
      CacheReadOnly = true;
    } else if (std::strncmp(Arg, "--cache-max-bytes=", 18) == 0) {
      Eviction.MaxBytes = std::strtoull(Arg + 18, nullptr, 10);
    } else if (std::strncmp(Arg, "--cache-ttl=", 12) == 0) {
      Eviction.TtlSeconds = std::atoll(Arg + 12);
    } else if (std::strncmp(Arg, "--connect=", 10) == 0) {
      ConnectPath = Arg + 10;
    } else if (std::strncmp(Arg, "--priority=", 11) == 0) {
      const char *Value = Arg + 11;
      if (std::strcmp(Value, "high") == 0) {
        Prio = service::Priority::High;
      } else if (std::strcmp(Value, "normal") == 0) {
        Prio = service::Priority::Normal;
      } else {
        std::fprintf(stderr, "--priority expects normal|high (got '%s')\n",
                     Value);
        return 1;
      }
    } else if (std::strncmp(Arg, "--deadline=", 11) == 0) {
      char *End = nullptr;
      DeadlineSeconds = std::strtod(Arg + 11, &End);
      if (End == Arg + 11 || *End != '\0' || DeadlineSeconds <= 0) {
        std::fprintf(stderr,
                     "--deadline expects a positive number of seconds "
                     "(got '%s')\n",
                     Arg + 11);
        return 1;
      }
    } else if (std::strcmp(Arg, "--no-result-cache") == 0) {
      NoResultCache = true;
    } else if (std::strncmp(Arg, "--trace-out=", 12) == 0) {
      TraceOutPath = Arg + 12;
      if (TraceOutPath.empty()) {
        std::fprintf(stderr, "--trace-out expects a file path\n");
        return 1;
      }
    } else if (std::strcmp(Arg, "--daemon-status") == 0) {
      WantDaemonStatus = true;
    } else if (std::strcmp(Arg, "--daemon-metrics") == 0) {
      WantDaemonMetrics = true;
    } else if (std::strncmp(Arg, "--shutdown", 10) == 0) {
      WantShutdown = true;
      if (Arg[10] == '=') {
        if (std::strcmp(Arg + 11, "now") == 0)
          ShutdownDrain = false;
        else if (std::strcmp(Arg + 11, "drain") != 0) {
          std::fprintf(stderr, "--shutdown expects drain|now (got '%s')\n",
                       Arg + 11);
          return 1;
        }
      } else if (Arg[10] != '\0') {
        std::fprintf(stderr, "unknown option: %s\n", Arg);
        return 1;
      }
    } else if (std::strncmp(Arg, "--jobs=", 7) == 0 ||
               std::strcmp(Arg, "--jobs") == 0) {
      const char *Value = Arg[6] == '=' ? Arg + 7
                          : I + 1 < Argc ? Argv[++I]
                                         : "";
      Options.Jobs = parseJobs(Value);
      if (Options.Jobs == 0) {
        std::fprintf(stderr,
                     "--jobs expects a positive count or \"auto\" (got "
                     "'%s')\n",
                     Value);
        return 1;
      }
    } else if (std::strcmp(Arg, "--help") == 0 || std::strcmp(Arg, "-h") == 0) {
      printUsage();
      return 0;
    } else if (Arg[0] == '-' && std::strcmp(Arg, "-") != 0) {
      std::fprintf(stderr, "unknown option: %s\n", Arg);
      printUsage();
      return 1;
    } else {
      InputPath = Arg;
    }
  }

  if (ListBenchmarks) {
    for (const bench::BenchmarkDef &Def : bench::allBenchmarks())
      std::printf("%-28s %s (%s)\n", Def.Name.c_str(), Def.Figure.c_str(),
                  Def.Origin.c_str());
    return 0;
  }

  // Daemon control verbs need only the socket.
  if (WantDaemonStatus || WantDaemonMetrics || WantShutdown) {
    if (ConnectPath.empty()) {
      std::fprintf(stderr, "--daemon-status/--daemon-metrics/--shutdown "
                           "require --connect=SOCKET\n");
      return 1;
    }
    if (WantDaemonStatus)
      return runDaemonStatus(ConnectPath);
    if (WantDaemonMetrics)
      return runDaemonMetrics(ConnectPath);
    return runDaemonShutdown(ConnectPath, ShutdownDrain);
  }

  // Load the monitor source.
  std::string Source;
  if (!loadSource(BenchName, InputPath, Source)) {
    if (BenchName.empty() && InputPath.empty())
      printUsage();
    return 1;
  }

  // Client mode: ship the request to the resident daemon.
  if (!ConnectPath.empty()) {
    service::PlaceRequest Req;
    Req.Source = Source;
    Req.Emit = EmitKind;
    Req.Solver = SolverName;
    Req.UseInvariant = Options.UseInvariant;
    Req.UseCommutativity = Options.UseCommutativity;
    Req.LazyBroadcast = Options.LazyBroadcast;
    Req.CacheQueries = Options.CacheQueries;
    Req.Incremental = Options.Incremental;
    Req.Jobs = Options.Jobs;
    Req.Prio = Prio;
    Req.BypassResultCache = NoResultCache;
    Req.DeadlineMs = static_cast<uint64_t>(DeadlineSeconds * 1000.0);
    Req.WantTrace = !TraceOutPath.empty();
    return runConnected(ConnectPath, Req, EmitKind, DeadlineSeconds,
                        TraceOutPath);
  }

  // Pipeline: parse -> sema -> invariant -> placement.
  std::unique_ptr<obs::Tracer> Tracer;
  if (!TraceOutPath.empty())
    Tracer = std::make_unique<obs::Tracer>();
  WallTimer Timer;
  DiagnosticEngine Diags;
  obs::Span ParseSpan(Tracer.get(), "parse");
  auto M = frontend::parseMonitor(Source, Diags);
  ParseSpan.finish();
  if (!M) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }
  logic::TermContext C;
  obs::Span SemaSpan(Tracer.get(), "sema");
  auto Sema = frontend::analyze(*M, C, Diags);
  SemaSpan.finish();
  if (!Sema) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }
  solver::SolverKind Kind = solver::parseSolverKind(SolverName);

  // Solver availability is checked *before* the store opens: a writable
  // open of --cache-dir rotates profile-mismatched logs aside, and an
  // unbuildable backend must stay a pure error path with no side effects
  // on the cache directory.
  std::string Profile = solver::backendProfileName(Kind);
  if (Profile.empty()) {
    std::fprintf(stderr, "solver backend '%s' is not available in this "
                         "build\n",
                 SolverName.c_str());
    return 1;
  }

  // Two-tier cache via the shared rig (identical assembly to the daemon
  // and the bench harness): sharded memo in front, persistent store
  // behind, keyed per backend profile so a directory warmed by
  // --solver=mini never answers for z3.
  std::shared_ptr<persist::QueryStore> Store =
      persist::QueryStore::openReportingWarnings(CacheDir, CacheReadOnly,
                                                 Profile,
                                                 Options.CacheQueries);
  if (Store)
    Store->setEvictionPolicy(Eviction);
  solver::SolverRig Rig = solver::buildSolverRig(C, Kind,
                                                 Options.CacheQueries, Store);
  if (!Rig) {
    std::fprintf(stderr, "solver backend '%s' is not available in this "
                         "build\n",
                 SolverName.c_str());
    return 1;
  }
  solver::SmtSolver &PlacementSolver = Rig.solver();
  // Each placement worker gets its own backend of the same kind.
  Options.WorkerSolvers = solver::SolverFactory(Kind);

  // Deadline: cooperative, polled at Hoare-check granularity through the
  // whole pipeline. A run finishing in time is untouched by the token.
  support::CancelToken Deadline;
  if (DeadlineSeconds > 0) {
    Deadline.setDeadlineAfterSeconds(DeadlineSeconds);
    Options.Cancel = &Deadline;
  }
  Options.Trace = Tracer.get();

  core::PlacementResult Result =
      core::placeSignals(C, *Sema, PlacementSolver, Options);
  double Elapsed = Timer.elapsedSeconds();

  if (Result.Cancelled) {
    std::fprintf(stderr,
                 "expresso: deadline of %gs exceeded during placement "
                 "(%zu hoare checks, %zu solver queries before "
                 "cancellation)\n",
                 DeadlineSeconds, Result.Stats.HoareChecks,
                 Result.Stats.SolverQueries);
    return 1;
  }

  // Store size management: with an eviction policy, this run is also the
  // store's janitor — compact before reporting so the stats line can show
  // what was evicted.
  if (Store && !Store->readOnly() && Eviction.enabled())
    Store->compact();

  obs::Span EmitSpan(Tracer.get(), "emit");
  if (EmitKind == "cpp") {
    std::fputs(codegen::emitCpp(Result).c_str(), stdout);
  } else if (EmitKind == "java") {
    std::fputs(codegen::emitJava(Result).c_str(), stdout);
  } else if (EmitKind == "ir") {
    std::fputs(codegen::printTargetIr(Result).c_str(), stdout);
  } else {
    std::fputs(Result.summary().c_str(), stdout);
    std::printf("\nstatistics:\n");
    std::printf("  solver backend:       %s\n",
                PlacementSolver.name().c_str());
    std::printf("  hoare checks:         %zu\n", Result.Stats.HoareChecks);
    std::printf("  solver queries:       %zu\n", Result.Stats.SolverQueries);
    // Cache counters print in every configuration: a --no-cache run shows
    // uniform zeros instead of dropping the lines, keeping the output
    // schema stable for diffing and scripts.
    std::printf("  query cache:          %llu hits / %llu misses (%.0f%%)%s\n",
                static_cast<unsigned long long>(Result.Stats.Cache.Hits),
                static_cast<unsigned long long>(Result.Stats.Cache.Misses),
                Result.Stats.Cache.hitRate() * 100,
                Options.CacheQueries ? "" : " [cache off]");
    // The persistent-cache line additionally reports store eviction when an
    // eviction policy ran (suffix only: the prefix stays grep-stable).
    std::string EvictedSuffix;
    if (Store && Eviction.enabled()) {
      persist::StoreStats SS = Store->stats();
      EvictedSuffix = " [" + std::to_string(SS.evicted()) + " evicted: " +
                      std::to_string(SS.EvictedTtl) + " ttl, " +
                      std::to_string(SS.EvictedSize) + " size; " +
                      std::to_string(Store->size()) + " records kept]";
    }
    std::printf("  persistent cache:     %llu hits / %llu misses (%.0f%%)%s%s\n",
                static_cast<unsigned long long>(Result.Stats.Cache.DiskHits),
                static_cast<unsigned long long>(
                    Result.Stats.Cache.DiskMisses),
                Result.Stats.Cache.diskHitRate() * 100,
                Store ? (Store->readOnly() ? " [read-only]" : "")
                      : " [no cache dir]",
                EvictedSuffix.c_str());
    std::printf("  pairs proved silent:  %zu / %zu\n",
                Result.Stats.NoSignalProved, Result.Stats.PairsConsidered);
    std::printf("  signals / broadcasts: %zu / %zu\n", Result.Stats.Signals,
                Result.Stats.Broadcasts);
    std::printf("  unconditional:        %zu\n", Result.Stats.Unconditional);
    std::printf("  §4.3 wins:            %zu\n",
                Result.Stats.CommutativityWins);
    std::printf("  analysis time:        %.2fs (invariant %.2fs)\n", Elapsed,
                Result.Stats.InvariantSeconds);
    // Deliberately below summary(): Σ and the stats trailer are mode-
    // independent; only this diagnostic line says how VCs were discharged.
    std::printf("  incremental sessions: %s\n",
                Result.Stats.IncrementalSessions
                    ? "on"
                    : (Options.Incremental ? "off (backend has no session "
                                             "support)"
                                           : "off"));
    std::printf("  placement jobs:       %u\n", Result.Stats.JobsUsed);
    for (size_t W = 0; W < Result.Stats.Workers.size(); ++W) {
      const core::WorkerStats &WS = Result.Stats.Workers[W];
      std::printf("    worker %zu: %llu pairs, %llu queries, %.2fs busy\n", W,
                  static_cast<unsigned long long>(WS.Pairs),
                  static_cast<unsigned long long>(WS.SolverQueries),
                  WS.BusySeconds);
    }
  }
  EmitSpan.finish();
  if (Tracer && !writeTraceFile(TraceOutPath, Tracer->exportChromeJson()))
    return 1;
  return 0;
}
