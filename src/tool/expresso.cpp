//===- tool/expresso.cpp - The expresso command-line compiler -----------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `expresso` CLI: reads an implicit-signal monitor (a .mon file, a
/// built-in benchmark, or stdin), infers a monitor invariant, runs signal
/// placement, and emits the explicit-signal artifact of choice.
///
///   expresso examples/monitors/rwlock.mon --emit=cpp
///   expresso --benchmark=BoundedBuffer --emit=java
///   expresso --benchmark=ReadersWriters --emit=ir --solver=mini
///
//===----------------------------------------------------------------------===//

#include "bench/Workloads.h"
#include "codegen/Codegen.h"
#include "core/SignalPlacement.h"
#include "frontend/Parser.h"
#include "logic/Printer.h"
#include "persist/QueryStore.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

using namespace expresso;

namespace {

void printUsage() {
  std::fprintf(
      stderr,
      "usage: expresso [options] <monitor.mon | ->\n"
      "\n"
      "Transforms an implicit-signal monitor into an explicit-signal one\n"
      "(PLDI'18 \"Symbolic Reasoning for Automatic Signal Placement\").\n"
      "\n"
      "options:\n"
      "  --emit=summary|ir|cpp|java   artifact to print (default: summary)\n"
      "  --solver=default|z3|mini|crosscheck\n"
      "  --benchmark=NAME             use a built-in evaluation monitor\n"
      "  --list-benchmarks            list built-in monitors and exit\n"
      "  --invariant=EXPR-FILE        skip inference, read invariant source\n"
      "  --no-invariant               place signals with I = true\n"
      "  --no-commutativity           disable the §4.3 weakening\n"
      "  --no-lazy-broadcast          emit eager signalAll broadcasts\n"
      "  --no-cache                   disable solver query memoization\n"
      "  --incremental=on|off         discharge VCs through incremental\n"
      "                               solver sessions (push/pop prefixes,\n"
      "                               batched no-signal checks; default on)\n"
      "                               vs one solver context per query; the\n"
      "                               output is byte-identical either way\n"
      "  --cache-dir=DIR              persist solver answers in DIR and\n"
      "                               reuse answers cached by earlier runs\n"
      "                               (shared safely across processes)\n"
      "  --cache-readonly             consult --cache-dir but never write it\n"
      "  --jobs N                     placement worker threads (also\n"
      "                               --jobs=N; \"auto\" = one per core;\n"
      "                               default 1 = serial)\n");
}

/// Parses a --jobs value: a positive count or "auto"; 0 means invalid.
unsigned parseJobs(const char *Value) {
  if (std::strcmp(Value, "auto") == 0)
    return support::ThreadPool::defaultWorkers();
  int N = std::atoi(Value);
  return N > 0 ? static_cast<unsigned>(N) : 0;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string EmitKind = "summary";
  std::string SolverName = "default";
  std::string BenchName;
  std::string InputPath;
  std::string CacheDir;
  bool CacheReadOnly = false;
  core::PlacementOptions Options;
  bool ListBenchmarks = false;

  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    if (std::strncmp(Arg, "--emit=", 7) == 0) {
      EmitKind = Arg + 7;
    } else if (std::strncmp(Arg, "--solver=", 9) == 0) {
      SolverName = Arg + 9;
    } else if (std::strncmp(Arg, "--benchmark=", 12) == 0) {
      BenchName = Arg + 12;
    } else if (std::strcmp(Arg, "--list-benchmarks") == 0) {
      ListBenchmarks = true;
    } else if (std::strcmp(Arg, "--no-invariant") == 0) {
      Options.UseInvariant = false;
    } else if (std::strcmp(Arg, "--no-commutativity") == 0) {
      Options.UseCommutativity = false;
    } else if (std::strcmp(Arg, "--no-lazy-broadcast") == 0) {
      Options.LazyBroadcast = false;
    } else if (std::strcmp(Arg, "--no-cache") == 0) {
      Options.CacheQueries = false;
    } else if (std::strncmp(Arg, "--incremental=", 14) == 0 ||
               std::strcmp(Arg, "--incremental") == 0) {
      const char *Value = Arg[13] == '=' ? Arg + 14
                          : I + 1 < Argc ? Argv[++I]
                                         : "";
      if (std::strcmp(Value, "on") == 0) {
        Options.Incremental = true;
      } else if (std::strcmp(Value, "off") == 0) {
        Options.Incremental = false;
      } else {
        std::fprintf(stderr, "--incremental expects on|off (got '%s')\n",
                     Value);
        return 1;
      }
    } else if (std::strncmp(Arg, "--cache-dir=", 12) == 0) {
      CacheDir = Arg + 12;
    } else if (std::strcmp(Arg, "--cache-readonly") == 0) {
      CacheReadOnly = true;
    } else if (std::strncmp(Arg, "--jobs=", 7) == 0 ||
               std::strcmp(Arg, "--jobs") == 0) {
      const char *Value = Arg[6] == '=' ? Arg + 7
                          : I + 1 < Argc ? Argv[++I]
                                         : "";
      Options.Jobs = parseJobs(Value);
      if (Options.Jobs == 0) {
        std::fprintf(stderr,
                     "--jobs expects a positive count or \"auto\" (got "
                     "'%s')\n",
                     Value);
        return 1;
      }
    } else if (std::strcmp(Arg, "--help") == 0 || std::strcmp(Arg, "-h") == 0) {
      printUsage();
      return 0;
    } else if (Arg[0] == '-' && std::strcmp(Arg, "-") != 0) {
      std::fprintf(stderr, "unknown option: %s\n", Arg);
      printUsage();
      return 1;
    } else {
      InputPath = Arg;
    }
  }

  if (ListBenchmarks) {
    for (const bench::BenchmarkDef &Def : bench::allBenchmarks())
      std::printf("%-28s %s (%s)\n", Def.Name.c_str(), Def.Figure.c_str(),
                  Def.Origin.c_str());
    return 0;
  }

  // Load the monitor source.
  std::string Source;
  if (!BenchName.empty()) {
    const bench::BenchmarkDef *Def = bench::findBenchmark(BenchName);
    if (!Def) {
      std::fprintf(stderr, "unknown benchmark '%s' (try --list-benchmarks)\n",
                   BenchName.c_str());
      return 1;
    }
    Source = Def->Source;
  } else if (InputPath == "-") {
    std::ostringstream Buf;
    Buf << std::cin.rdbuf();
    Source = Buf.str();
  } else if (!InputPath.empty()) {
    std::ifstream In(InputPath);
    if (!In) {
      std::fprintf(stderr, "cannot open %s\n", InputPath.c_str());
      return 1;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Source = Buf.str();
  } else {
    printUsage();
    return 1;
  }

  // Pipeline: parse -> sema -> invariant -> placement.
  WallTimer Timer;
  DiagnosticEngine Diags;
  auto M = frontend::parseMonitor(Source, Diags);
  if (!M) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }
  logic::TermContext C;
  auto Sema = frontend::analyze(*M, C, Diags);
  if (!Sema) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }
  solver::SolverKind Kind = solver::parseSolverKind(SolverName);
  auto Solver = solver::createSolver(Kind, C);
  if (!Solver) {
    std::fprintf(stderr, "solver backend '%s' is not available in this "
                         "build\n",
                 SolverName.c_str());
    return 1;
  }
  // Each placement worker gets its own backend of the same kind.
  Options.WorkerSolvers = solver::SolverFactory(Kind);

  // Two-tier cache: wrap the backend in the sharded memo here (placeSignals
  // reuses an existing CachingSolver instead of stacking a second layer)
  // and hang the persistent store behind it. The store is keyed per backend
  // profile, so a directory warmed by --solver=mini never answers for z3.
  std::shared_ptr<persist::QueryStore> Store =
      persist::QueryStore::openReportingWarnings(
          CacheDir, CacheReadOnly, Solver->name(), Options.CacheQueries);
  std::unique_ptr<solver::CachingSolver> Cache;
  if (Options.CacheQueries) {
    Cache = solver::CachingSolver::create(C, std::move(Solver));
    if (Cache && Store)
      Cache->attachStore(Store);
  }
  solver::SmtSolver &PlacementSolver =
      Cache ? static_cast<solver::SmtSolver &>(*Cache) : *Solver;

  core::PlacementResult Result =
      core::placeSignals(C, *Sema, PlacementSolver, Options);
  double Elapsed = Timer.elapsedSeconds();

  if (EmitKind == "cpp") {
    std::fputs(codegen::emitCpp(Result).c_str(), stdout);
  } else if (EmitKind == "java") {
    std::fputs(codegen::emitJava(Result).c_str(), stdout);
  } else if (EmitKind == "ir") {
    std::fputs(codegen::printTargetIr(Result).c_str(), stdout);
  } else {
    std::fputs(Result.summary().c_str(), stdout);
    std::printf("\nstatistics:\n");
    std::printf("  solver backend:       %s\n",
                PlacementSolver.name().c_str());
    std::printf("  hoare checks:         %zu\n", Result.Stats.HoareChecks);
    std::printf("  solver queries:       %zu\n", Result.Stats.SolverQueries);
    // Cache counters print in every configuration: a --no-cache run shows
    // uniform zeros instead of dropping the lines, keeping the output
    // schema stable for diffing and scripts.
    std::printf("  query cache:          %llu hits / %llu misses (%.0f%%)%s\n",
                static_cast<unsigned long long>(Result.Stats.Cache.Hits),
                static_cast<unsigned long long>(Result.Stats.Cache.Misses),
                Result.Stats.Cache.hitRate() * 100,
                Options.CacheQueries ? "" : " [cache off]");
    std::printf("  persistent cache:     %llu hits / %llu misses (%.0f%%)%s\n",
                static_cast<unsigned long long>(Result.Stats.Cache.DiskHits),
                static_cast<unsigned long long>(
                    Result.Stats.Cache.DiskMisses),
                Result.Stats.Cache.diskHitRate() * 100,
                Store ? (Store->readOnly() ? " [read-only]" : "")
                      : " [no cache dir]");
    std::printf("  pairs proved silent:  %zu / %zu\n",
                Result.Stats.NoSignalProved, Result.Stats.PairsConsidered);
    std::printf("  signals / broadcasts: %zu / %zu\n", Result.Stats.Signals,
                Result.Stats.Broadcasts);
    std::printf("  unconditional:        %zu\n", Result.Stats.Unconditional);
    std::printf("  §4.3 wins:            %zu\n",
                Result.Stats.CommutativityWins);
    std::printf("  analysis time:        %.2fs (invariant %.2fs)\n", Elapsed,
                Result.Stats.InvariantSeconds);
    // Deliberately below summary(): Σ and the stats trailer are mode-
    // independent; only this diagnostic line says how VCs were discharged.
    std::printf("  incremental sessions: %s\n",
                Result.Stats.IncrementalSessions
                    ? "on"
                    : (Options.Incremental ? "off (backend has no session "
                                             "support)"
                                           : "off"));
    std::printf("  placement jobs:       %u\n", Result.Stats.JobsUsed);
    for (size_t W = 0; W < Result.Stats.Workers.size(); ++W) {
      const core::WorkerStats &WS = Result.Stats.Workers[W];
      std::printf("    worker %zu: %llu pairs, %llu queries, %.2fs busy\n", W,
                  static_cast<unsigned long long>(WS.Pairs),
                  static_cast<unsigned long long>(WS.SolverQueries),
                  WS.BusySeconds);
    }
  }
  return 0;
}
