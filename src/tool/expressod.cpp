//===- tool/expressod.cpp - The resident placement daemon ---------------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `expressod`: a long-lived placement service. Clients (`expresso
/// --connect=SOCK`) send monitor specs over a Unix-domain socket; the
/// daemon runs the identical analysis pipeline against shared warm caches
/// — a resident canonical-key query store (optionally disk-backed) plus a
/// whole-response replay cache — so the second request for any workload is
/// orders of magnitude cheaper than a cold CLI run, while every Σ stays
/// byte-identical to the standalone `expresso`.
///
///   expressod --socket=/tmp/expressod.sock --workers=4 --cache-dir=qcache
///
//===----------------------------------------------------------------------===//

#include "service/Server.h"
#include "support/ThreadPool.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#ifndef _WIN32
#include <csignal>
#include <pthread.h>
#endif

#include <thread>

using namespace expresso;

namespace {

void printUsage() {
  std::fprintf(
      stderr,
      "usage: expressod --socket=PATH [options]\n"
      "\n"
      "Runs the resident signal-placement service. Clients connect with\n"
      "`expresso --connect=PATH ...` and receive byte-identical artifacts\n"
      "to the standalone CLI, served from shared warm caches.\n"
      "\n"
      "options:\n"
      "  --socket=PATH            Unix-domain socket to listen on (required)\n"
      "  --workers=N              concurrent placements (default 2)\n"
      "  --queue=N                admission queue bound (default 64)\n"
      "  --jobs-budget=N|auto     global worker-slot budget requests lease\n"
      "                           their --jobs from (default: one per core)\n"
      "  --solver=NAME            backend the shared store is keyed to\n"
      "                           (default: the build's preferred solver)\n"
      "  --cache-dir=DIR          persist the shared store in DIR (and reuse\n"
      "                           answers other processes/daemons wrote)\n"
      "  --cache-readonly         consult --cache-dir but never write it\n"
      "  --cache-max-bytes=N      evict least-recently-used records beyond\n"
      "                           N bytes when the store compacts\n"
      "  --cache-ttl=SECONDS      evict records unused for SECONDS at\n"
      "                           compaction\n"
      "  --no-result-cache        disable the whole-response replay cache\n"
      "  --default-deadline=SECONDS\n"
      "                           deadline for requests that carry none\n"
      "                           (cooperatively cancelled past it; a\n"
      "                           request's own --deadline always wins;\n"
      "                           default: none)\n"
      "  --request-log=FILE       append one JSON object per served request\n"
      "                           (trace id — echoed to the client —\n"
      "                           outcome, queue/run seconds, deadline\n"
      "                           budget, cache hits, jobs leased)\n"
      "\n"
      "SIGINT/SIGTERM (or a client shutdown request) drains gracefully:\n"
      "admission stops, queued and in-flight requests finish and respond,\n"
      "the store is compacted under the eviction policy, then the daemon\n"
      "exits.\n");
}

} // namespace

#ifndef _WIN32

int main(int Argc, char **Argv) {
  service::ServerOptions Opts;
  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    if (std::strncmp(Arg, "--socket=", 9) == 0) {
      Opts.SocketPath = Arg + 9;
    } else if (std::strncmp(Arg, "--workers=", 10) == 0) {
      int N = std::atoi(Arg + 10);
      if (N <= 0) {
        std::fprintf(stderr, "--workers expects a positive count\n");
        return 1;
      }
      Opts.Workers = static_cast<unsigned>(N);
    } else if (std::strncmp(Arg, "--queue=", 8) == 0) {
      int N = std::atoi(Arg + 8);
      if (N <= 0) {
        std::fprintf(stderr, "--queue expects a positive count\n");
        return 1;
      }
      Opts.QueueDepth = static_cast<size_t>(N);
    } else if (std::strncmp(Arg, "--jobs-budget=", 14) == 0) {
      const char *Value = Arg + 14;
      if (std::strcmp(Value, "auto") == 0) {
        Opts.JobsBudget = support::ThreadPool::defaultWorkers();
      } else {
        int N = std::atoi(Value);
        if (N <= 0) {
          std::fprintf(stderr,
                       "--jobs-budget expects a positive count or \"auto\"\n");
          return 1;
        }
        Opts.JobsBudget = static_cast<unsigned>(N);
      }
    } else if (std::strncmp(Arg, "--solver=", 9) == 0) {
      Opts.SolverName = Arg + 9;
    } else if (std::strncmp(Arg, "--cache-dir=", 12) == 0) {
      Opts.CacheDir = Arg + 12;
    } else if (std::strcmp(Arg, "--cache-readonly") == 0) {
      Opts.CacheReadOnly = true;
    } else if (std::strncmp(Arg, "--cache-max-bytes=", 18) == 0) {
      Opts.Eviction.MaxBytes = std::strtoull(Arg + 18, nullptr, 10);
    } else if (std::strncmp(Arg, "--cache-ttl=", 12) == 0) {
      Opts.Eviction.TtlSeconds = std::atoll(Arg + 12);
    } else if (std::strcmp(Arg, "--no-result-cache") == 0) {
      Opts.ResultCache = false;
    } else if (std::strncmp(Arg, "--default-deadline=", 19) == 0) {
      char *End = nullptr;
      double Seconds = std::strtod(Arg + 19, &End);
      if (End == Arg + 19 || *End != '\0' || Seconds <= 0) {
        std::fprintf(stderr, "--default-deadline expects a positive number "
                             "of seconds\n");
        return 1;
      }
      Opts.DefaultDeadlineMs = static_cast<uint64_t>(Seconds * 1000.0);
    } else if (std::strncmp(Arg, "--request-log=", 14) == 0) {
      Opts.RequestLogPath = Arg + 14;
      if (Opts.RequestLogPath.empty()) {
        std::fprintf(stderr, "--request-log expects a file path\n");
        return 1;
      }
    } else if (std::strcmp(Arg, "--help") == 0 || std::strcmp(Arg, "-h") == 0) {
      printUsage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", Arg);
      printUsage();
      return 1;
    }
  }
  if (Opts.SocketPath.empty()) {
    printUsage();
    return 1;
  }

  // Block the shutdown signals in every thread (the mask is inherited);
  // one dedicated thread sigwait()s them and triggers a graceful drain.
  sigset_t Sigs;
  sigemptyset(&Sigs);
  sigaddset(&Sigs, SIGINT);
  sigaddset(&Sigs, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &Sigs, nullptr);
  ::signal(SIGPIPE, SIG_IGN); // a vanished client must not kill the daemon

  service::Server Server(Opts);
  std::string Error;
  if (!Server.start(&Error)) {
    std::fprintf(stderr, "expressod: %s\n", Error.c_str());
    return 1;
  }
  std::fprintf(stderr, "expressod: serving on %s (workers %u, budget %u, "
                       "store %s)\n",
               Opts.SocketPath.c_str(), Opts.Workers,
               Server.service().budget().total(),
               Opts.CacheDir.empty() ? "in-memory" : Opts.CacheDir.c_str());

  std::atomic<bool> SignalThreadDone{false};
  std::thread SignalThread([&] {
    for (;;) {
      int Sig = 0;
      if (sigwait(&Sigs, &Sig) != 0)
        return;
      if (SignalThreadDone.load())
        return;
      std::fprintf(stderr, "expressod: signal %d, draining\n", Sig);
      Server.requestShutdown(/*Drain=*/true);
    }
  });

  Server.wait();

  // Unblock the signal thread: it consumes one synthetic SIGTERM and sees
  // the done flag.
  SignalThreadDone.store(true);
  pthread_kill(SignalThread.native_handle(), SIGTERM);
  SignalThread.join();

  service::StatusResponse S = Server.status();
  std::fprintf(stderr,
               "expressod: exiting — %llu requests served, %llu replay "
               "hits, store %llu records (%llu evicted)\n",
               static_cast<unsigned long long>(S.RequestsServed),
               static_cast<unsigned long long>(S.ResultCacheHits),
               static_cast<unsigned long long>(S.StoreRecords),
               static_cast<unsigned long long>(S.StoreEvicted));
  return 0;
}

#else

int main() {
  std::fprintf(stderr, "expressod is not supported on this platform\n");
  return 1;
}

#endif
