//===- tool/expresso_diff.cpp - Differential fuzzing driver ---------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `expresso-diff` CLI: generate seeded monitor specs (src/specgen) and
/// run each through the whole execution-mode matrix — {serial, --jobs N} x
/// {incremental on/off} x {cache off/cold/warm} x {MiniSmt, Z3 when
/// present} x {local, daemon} — asserting Σ, stats, and cache-counter
/// parity. Divergences shrink to minimal *.repro files; a repro replays
/// with --replay=FILE. See docs/FUZZING.md.
///
///   expresso-diff --count=100 --quick
///   expresso-diff --count=500 --seed-start=1000 --ccrs=12 --depth=3
///   expresso-diff --replay=repros/diff-seed42-min.repro
///
//===----------------------------------------------------------------------===//

#include "specgen/Diff.h"
#include "specgen/SpecGen.h"
#include "support/Timer.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace expresso;

namespace {

void printUsage() {
  std::fprintf(
      stderr,
      "usage: expresso-diff [options]\n"
      "       expresso-diff --replay=FILE.repro\n"
      "\n"
      "Differential fuzzing for the placement pipeline: every generated\n"
      "spec runs across {serial,--jobs N} x {incremental on/off} x\n"
      "{cache off/cold/warm} x {MiniSmt,Z3} x {local,daemon}; any parity\n"
      "divergence is shrunk to a minimal *.repro.\n"
      "\n"
      "generation:\n"
      "  --count=N           specs to check (default 100)\n"
      "  --seed-start=N      first seed (default 1)\n"
      "  --ccrs=N            max CCRs per spec (default 6)\n"
      "  --depth=N           max guard connective depth (default 3)\n"
      "  --fan-in=N          max shared vars per guard (default 3)\n"
      "  --ints=N --bools=N  max field counts (default 4 / 2)\n"
      "  --stmts=N           max statements per CCR body (default 2)\n"
      "  --shape=S           comparison|arithmetic|boolean|mixed (default\n"
      "                      mixed; mixed also varies the shape per seed)\n"
      "  --loops             allow bounded while-loops in bodies\n"
      "  --config=STR        check exactly one spec from a key=value,...\n"
      "                      config string (ignores the knobs above)\n"
      "\n"
      "matrix:\n"
      "  --jobs=N            parallel leg width (default 4; 1 = serial only)\n"
      "  --parallel=N        concurrently forked matrix cells (default:\n"
      "                      hardware threads, clamped to [4, 16])\n"
      "  --solver=mini|z3|both\n"
      "                      backend groups (default both when Z3 is built)\n"
      "  --no-daemon         skip the in-process expressod cells\n"
      "  --timeout=SECONDS   per-cell deadline; an overdue cell skips the\n"
      "                      spec instead of wedging the run (default 300)\n"
      "  --spec-budget=SECONDS\n"
      "                      wall budget for one spec's whole matrix; a\n"
      "                      slow spec degrades to a skipped-and-logged\n"
      "                      row (default 0 = unlimited)\n"
      "\n"
      "failure handling:\n"
      "  --repro-dir=DIR     where *.repro files land (default: repros)\n"
      "  --no-shrink         keep the original divergent spec unreduced\n"
      "  --replay=FILE       re-check one *.repro across the full matrix\n"
      "\n"
      "misc:\n"
      "  --quick             small preset: --count=25 --ccrs=4 --depth=2\n"
      "  --print-specs       dump each generated spec before checking it\n"
      "  --verbose           per-cell progress on stderr\n");
}

bool parseUnsigned(const char *Value, unsigned &Out) {
  char *End = nullptr;
  unsigned long V = std::strtoul(Value, &End, 10);
  if (End == Value || *End != '\0')
    return false;
  Out = static_cast<unsigned>(V);
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  specgen::DiffOptions Opts;
  Opts.ReproDir = "repros";
  specgen::GenConfig Max;
  Max.Ccrs = 6;
  Max.MaxCcrsPerMethod = 3;
  Max.IntFields = 4;
  Max.BoolFields = 2;
  Max.PredicateDepth = 3;
  Max.FanIn = 3;
  Max.BodyStmts = 2;
  Max.AllowLoops = false;

  unsigned Count = 100;
  bool CountSet = false;
  uint64_t SeedStart = 1;
  std::string Replay;
  std::string FixedConfig;
  std::string SolverSel = "both";
  bool PrintSpecs = false;

  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    unsigned U = 0;
    if (std::strncmp(Arg, "--count=", 8) == 0 && parseUnsigned(Arg + 8, U)) {
      Count = U;
      CountSet = true;
    } else if (std::strncmp(Arg, "--seed-start=", 13) == 0) {
      SeedStart = std::strtoull(Arg + 13, nullptr, 10);
    } else if (std::strncmp(Arg, "--ccrs=", 7) == 0 &&
               parseUnsigned(Arg + 7, U)) {
      Max.Ccrs = U;
    } else if (std::strncmp(Arg, "--depth=", 8) == 0 &&
               parseUnsigned(Arg + 8, U)) {
      Max.PredicateDepth = U;
    } else if (std::strncmp(Arg, "--fan-in=", 9) == 0 &&
               parseUnsigned(Arg + 9, U)) {
      Max.FanIn = U;
    } else if (std::strncmp(Arg, "--ints=", 7) == 0 &&
               parseUnsigned(Arg + 7, U)) {
      Max.IntFields = U;
    } else if (std::strncmp(Arg, "--bools=", 8) == 0 &&
               parseUnsigned(Arg + 8, U)) {
      Max.BoolFields = U;
    } else if (std::strncmp(Arg, "--stmts=", 8) == 0 &&
               parseUnsigned(Arg + 8, U)) {
      Max.BodyStmts = U;
    } else if (std::strncmp(Arg, "--shape=", 8) == 0) {
      if (!specgen::parseGuardShape(Arg + 8, Max.Shape)) {
        std::fprintf(stderr, "unknown --shape '%s'\n", Arg + 8);
        return 2;
      }
    } else if (std::strcmp(Arg, "--loops") == 0) {
      Max.AllowLoops = true;
    } else if (std::strncmp(Arg, "--config=", 9) == 0) {
      FixedConfig = Arg + 9;
    } else if (std::strncmp(Arg, "--jobs=", 7) == 0 &&
               parseUnsigned(Arg + 7, U) && U > 0) {
      Opts.JobsMax = U;
    } else if (std::strncmp(Arg, "--parallel=", 11) == 0 &&
               parseUnsigned(Arg + 11, U) && U > 0) {
      Opts.Parallel = U;
    } else if (std::strncmp(Arg, "--solver=", 9) == 0) {
      SolverSel = Arg + 9;
    } else if (std::strcmp(Arg, "--no-daemon") == 0) {
      Opts.UseDaemon = false;
    } else if (std::strncmp(Arg, "--timeout=", 10) == 0 &&
               parseUnsigned(Arg + 10, U) && U > 0) {
      Opts.TimeoutSeconds = static_cast<int>(U);
    } else if (std::strncmp(Arg, "--repro-dir=", 12) == 0) {
      Opts.ReproDir = Arg + 12;
    } else if (std::strcmp(Arg, "--no-shrink") == 0) {
      Opts.Shrink = false;
    } else if (std::strncmp(Arg, "--replay=", 9) == 0) {
      Replay = Arg + 9;
    } else if (std::strncmp(Arg, "--spec-budget=", 14) == 0 &&
               parseUnsigned(Arg + 14, U)) {
      Opts.SpecBudgetSeconds = static_cast<int>(U);
    } else if (std::strcmp(Arg, "--quick") == 0) {
      if (!CountSet)
        Count = 25;
      Max.Ccrs = 4;
      Max.PredicateDepth = 2;
      Max.FanIn = 2;
      Max.BodyStmts = 2;
      if (Opts.SpecBudgetSeconds == 0)
        Opts.SpecBudgetSeconds = 5;
    } else if (std::strcmp(Arg, "--print-specs") == 0) {
      PrintSpecs = true;
    } else if (std::strcmp(Arg, "--verbose") == 0) {
      Opts.Verbose = true;
    } else if (std::strcmp(Arg, "--help") == 0 || std::strcmp(Arg, "-h") == 0) {
      printUsage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown option: %s\n\n", Arg);
      printUsage();
      return 2;
    }
  }

  if (SolverSel == "mini") {
    Opts.Backends = {solver::SolverKind::Mini};
  } else if (SolverSel == "z3") {
    if (!solver::hasZ3()) {
      std::fprintf(stderr, "--solver=z3 requested but Z3 is not built in\n");
      return 2;
    }
    Opts.Backends = {solver::SolverKind::Z3};
  } else if (SolverSel != "both") {
    std::fprintf(stderr, "--solver expects mini|z3|both (got '%s')\n",
                 SolverSel.c_str());
    return 2;
  }

  // Replay mode: one spec from a *.repro file, full matrix, no generation.
  if (!Replay.empty()) {
    std::string Source, Error;
    if (!specgen::readRepro(Replay, Source, &Error)) {
      std::fprintf(stderr, "replay: %s\n", Error.c_str());
      return 2;
    }
    std::printf("replaying %s across the full matrix...\n", Replay.c_str());
    specgen::SpecVerdict V =
        specgen::checkSpec(Source, "replay=" + Replay, Opts);
    switch (V.K) {
    case specgen::SpecVerdict::Kind::Parity:
      std::printf("replay: parity holds (%u cells) — the divergence did not "
                  "reproduce\n",
                  V.Cells);
      return 0;
    case specgen::SpecVerdict::Kind::Divergence:
      std::printf("replay: DIVERGENCE: %s\n", V.Detail.c_str());
      if (!V.ReproPath.empty())
        std::printf("  repro: %s\n", V.ReproPath.c_str());
      if (!V.MinReproPath.empty())
        std::printf("  minimized: %s\n  rerun: expresso-diff --replay=%s\n",
                    V.MinReproPath.c_str(), V.MinReproPath.c_str());
      return 1;
    case specgen::SpecVerdict::Kind::Skipped:
      std::printf("replay: skipped (%s)\n", V.Detail.c_str());
      return 1;
    case specgen::SpecVerdict::Kind::Invalid:
      std::printf("replay: spec invalid:\n%s", V.Detail.c_str());
      return 2;
    }
    return 2;
  }

  WallTimer Total;
  unsigned Parity = 0, Divergences = 0, Skipped = 0, Invalid = 0;
  unsigned TotalCells = 0;
  for (unsigned I = 0; I < Count; ++I) {
    uint64_t Seed = SeedStart + I;
    specgen::GenConfig Config;
    if (!FixedConfig.empty()) {
      std::string Error;
      if (!specgen::configFromString(FixedConfig, Config, &Error)) {
        std::fprintf(stderr, "--config: %s\n", Error.c_str());
        return 2;
      }
      Count = 1; // a fixed config describes exactly one spec
    } else {
      Config = specgen::sampleConfig(Seed, Max);
    }
    std::string ConfigStr = specgen::configToString(Config);
    std::string Source = specgen::generateMonitorSource(Config);
    if (PrintSpecs)
      std::printf("--- %s\n%s", ConfigStr.c_str(), Source.c_str());

    WallTimer SpecTimer;
    specgen::SpecVerdict V = specgen::checkSpec(Source, ConfigStr, Opts);
    TotalCells += V.Cells;
    const char *Tag = "";
    switch (V.K) {
    case specgen::SpecVerdict::Kind::Parity:
      ++Parity;
      Tag = "parity";
      break;
    case specgen::SpecVerdict::Kind::Divergence:
      ++Divergences;
      Tag = "DIVERGENCE";
      break;
    case specgen::SpecVerdict::Kind::Skipped:
      ++Skipped;
      Tag = "skipped";
      break;
    case specgen::SpecVerdict::Kind::Invalid:
      ++Invalid;
      Tag = "INVALID";
      break;
    }
    std::printf("[%u/%u] seed=%llu %-10s %u cells %.1fs  (%s)\n", I + 1,
                Count, static_cast<unsigned long long>(Seed), Tag, V.Cells,
                SpecTimer.elapsedSeconds(), ConfigStr.c_str());
    if (V.K == specgen::SpecVerdict::Kind::Divergence) {
      std::printf("  %s\n", V.Detail.c_str());
      if (!V.ReproPath.empty())
        std::printf("  repro written: %s\n  rerun: expresso-diff "
                    "--replay=%s\n",
                    V.ReproPath.c_str(), V.ReproPath.c_str());
      if (!V.MinReproPath.empty())
        std::printf("  minimized: %s\n  rerun: expresso-diff --replay=%s\n",
                    V.MinReproPath.c_str(), V.MinReproPath.c_str());
    } else if (V.K == specgen::SpecVerdict::Kind::Skipped) {
      std::printf("  %s\n", V.Detail.c_str());
    } else if (V.K == specgen::SpecVerdict::Kind::Invalid) {
      std::printf("  generator emitted a spec the frontend rejects — this "
                  "is a specgen bug:\n%s", V.Detail.c_str());
    }
  }

  std::printf("\nchecked %u specs / %u matrix cells in %.1fs: %u parity, %u "
              "divergences, %u skipped, %u invalid\n",
              Parity + Divergences + Skipped + Invalid, TotalCells,
              Total.elapsedSeconds(), Parity, Divergences, Skipped, Invalid);
  return (Divergences || Invalid) ? 1 : 0;
}
