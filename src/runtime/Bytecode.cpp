//===- runtime/Bytecode.cpp - Compiled guards and bodies ------------------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//

#include "runtime/Bytecode.h"

#include "logic/Linear.h"
#include "support/Casting.h"

#include <cassert>
#include <sstream>

using namespace expresso;
using namespace expresso::runtime;
using namespace expresso::frontend;

//===----------------------------------------------------------------------===//
// SlotLayout
//===----------------------------------------------------------------------===//

SlotLayout::SlotLayout(const Monitor &M) : M(M) {
  for (const Field &F : M.Fields) {
    if (F.Type == TypeKind::IntArray || F.Type == TypeKind::BoolArray) {
      ArraySlots.emplace(F.Name, static_cast<int>(ArraySlots.size()));
    } else {
      SharedIsBool.emplace(F.Name, F.Type == TypeKind::Bool);
      SharedSlots.emplace(F.Name, static_cast<int>(SharedSlots.size()));
    }
  }
  // Locals: dense per-method numbering; all methods share the frame space
  // (a thread runs one method at a time).
  for (const Method &Me : M.Methods) {
    size_t Next = 0;
    auto addLocal = [&](const std::string &Name) {
      LocalSlots.emplace(Me.Name + "::" + Name, static_cast<int>(Next++));
    };
    for (const Param &P : Me.Params)
      addLocal(P.Name);
    // Collect LocalDecl statements recursively.
    std::vector<const Stmt *> Work;
    for (const WaitUntil &W : Me.Body)
      Work.push_back(W.Body);
    while (!Work.empty()) {
      const Stmt *S = Work.back();
      Work.pop_back();
      switch (S->kind()) {
      case Stmt::Kind::LocalDecl:
        addLocal(cast<LocalDeclStmt>(S)->name());
        break;
      case Stmt::Kind::Seq:
        for (const Stmt *Sub : cast<SeqStmt>(S)->stmts())
          Work.push_back(Sub);
        break;
      case Stmt::Kind::If:
        Work.push_back(cast<IfStmt>(S)->thenStmt());
        Work.push_back(cast<IfStmt>(S)->elseStmt());
        break;
      case Stmt::Kind::While:
        Work.push_back(cast<WhileStmt>(S)->body());
        break;
      default:
        break;
      }
    }
    MaxLocalSlots = std::max(MaxLocalSlots, Next);
  }
}

int SlotLayout::sharedSlot(const std::string &Field) const {
  auto It = SharedSlots.find(Field);
  assert(It != SharedSlots.end() && "unknown scalar field");
  return It->second;
}

int SlotLayout::arraySlot(const std::string &Field) const {
  auto It = ArraySlots.find(Field);
  assert(It != ArraySlots.end() && "unknown array field");
  return It->second;
}

int SlotLayout::localSlot(const Method &Me, const std::string &Name) const {
  auto It = LocalSlots.find(Me.Name + "::" + Name);
  return It == LocalSlots.end() ? -1 : It->second;
}

void SlotLayout::packShared(const logic::Assignment &A, Frame &F) const {
  F.Shared.assign(SharedSlots.size(), 0);
  F.Arrays.assign(ArraySlots.size(), {});
  for (const auto &[Name, Slot] : SharedSlots) {
    auto It = A.find(Name);
    if (It != A.end())
      F.Shared[static_cast<size_t>(Slot)] = It->second.I;
  }
  for (const auto &[Name, Slot] : ArraySlots) {
    auto It = A.find(Name);
    if (It != A.end())
      F.Arrays[static_cast<size_t>(Slot)] = It->second.A;
  }
}

void SlotLayout::unpackShared(const Frame &F, logic::Assignment &A) const {
  for (const auto &[Name, Slot] : SharedSlots) {
    bool IsBool = SharedIsBool.at(Name);
    int64_t V = F.Shared[static_cast<size_t>(Slot)];
    A[Name] = IsBool ? logic::Value::ofBool(V != 0) : logic::Value::ofInt(V);
  }
  for (const auto &[Name, Slot] : ArraySlots) {
    const Field *Fl = M.findField(Name);
    A[Name] = logic::Value::ofArray(Fl->Type == TypeKind::IntArray
                                        ? logic::Sort::IntArray
                                        : logic::Sort::BoolArray,
                                    F.Arrays[static_cast<size_t>(Slot)]);
  }
}

void SlotLayout::packLocals(const Method &Me, const logic::Assignment &A,
                            Frame &F) const {
  F.Locals.assign(MaxLocalSlots, 0);
  for (const auto &[Name, V] : A) {
    int Slot = localSlot(Me, Name);
    if (Slot >= 0)
      F.Locals[static_cast<size_t>(Slot)] = V.I;
  }
}

void SlotLayout::unpackLocals(const Method &Me, const Frame &F,
                              logic::Assignment &A) const {
  for (const auto &[Qual, Slot] : LocalSlots) {
    if (Qual.rfind(Me.Name + "::", 0) != 0)
      continue;
    std::string Plain = Qual.substr(Me.Name.size() + 2);
    auto It = A.find(Plain);
    if (It == A.end())
      continue; // only write back locals the caller bound
    It->second.I = F.Locals[static_cast<size_t>(Slot)];
  }
}

//===----------------------------------------------------------------------===//
// Compiler
//===----------------------------------------------------------------------===//

namespace expresso {
namespace runtime {

class Compiler {
public:
  Compiler(const SlotLayout &L, const Method *M) : L(L), M(M) {}

  void expr(const Expr *E) {
    switch (E->kind()) {
    case Expr::Kind::IntLit:
      emit(OpCode::PushConst, cast<IntLit>(E)->value());
      return;
    case Expr::Kind::BoolLit:
      emit(OpCode::PushConst, cast<BoolLit>(E)->value() ? 1 : 0);
      return;
    case Expr::Kind::VarRef: {
      const std::string &Name = cast<VarRef>(E)->name();
      int Slot = M ? L.localSlot(*M, Name) : -1;
      if (Slot >= 0) {
        emit(OpCode::LoadLocal, Slot);
      } else {
        emit(OpCode::LoadShared, L.sharedSlot(Name));
      }
      return;
    }
    case Expr::Kind::ArrayRef: {
      const auto *A = cast<ArrayRef>(E);
      expr(A->index());
      emit(OpCode::LoadArray, L.arraySlot(A->array()));
      return;
    }
    case Expr::Kind::Unary: {
      const auto *U = cast<Unary>(E);
      expr(U->operand());
      emit(U->op() == UnaryOp::Not ? OpCode::Not : OpCode::Neg);
      return;
    }
    case Expr::Kind::Binary: {
      const auto *B = cast<Binary>(E);
      switch (B->op()) {
      case BinaryOp::And: {
        // Short-circuit: lhs false => 0 without evaluating rhs.
        expr(B->lhs());
        size_t JZ = emitPatch(OpCode::JumpIfZero);
        expr(B->rhs());
        size_t JEnd = emitPatch(OpCode::Jump);
        patch(JZ);
        emit(OpCode::PushConst, 0);
        patch(JEnd);
        return;
      }
      case BinaryOp::Or: {
        expr(B->lhs());
        size_t JNZ = emitPatch(OpCode::JumpIfNonZero);
        expr(B->rhs());
        size_t JEnd = emitPatch(OpCode::Jump);
        patch(JNZ);
        emit(OpCode::PushConst, 1);
        patch(JEnd);
        return;
      }
      case BinaryOp::Gt:
      case BinaryOp::Ge:
        // a > b compiles as b < a (operands emitted swapped).
        expr(B->rhs());
        expr(B->lhs());
        emit(B->op() == BinaryOp::Gt ? OpCode::CmpLt : OpCode::CmpLe);
        return;
      default:
        break;
      }
      expr(B->lhs());
      expr(B->rhs());
      switch (B->op()) {
      case BinaryOp::Add:
        emit(OpCode::Add);
        return;
      case BinaryOp::Sub:
        emit(OpCode::Sub);
        return;
      case BinaryOp::Mul:
        emit(OpCode::Mul);
        return;
      case BinaryOp::Mod:
        emit(OpCode::Mod);
        return;
      case BinaryOp::Eq:
        emit(OpCode::CmpEq);
        return;
      case BinaryOp::Ne:
        emit(OpCode::CmpEq);
        emit(OpCode::Not);
        return;
      case BinaryOp::Lt:
        emit(OpCode::CmpLt);
        return;
      case BinaryOp::Le:
        emit(OpCode::CmpLe);
        return;
      case BinaryOp::Gt:
      case BinaryOp::Ge:
      case BinaryOp::And:
      case BinaryOp::Or:
        return; // handled above
      }
      return;
    }
    }
  }

  void stmt(const Stmt *S) {
    switch (S->kind()) {
    case Stmt::Kind::Skip:
      return;
    case Stmt::Kind::Assign: {
      const auto *A = cast<AssignStmt>(S);
      expr(A->value());
      int Slot = M ? L.localSlot(*M, A->target()) : -1;
      if (Slot >= 0) {
        emit(OpCode::StoreLocal, Slot);
      } else {
        emit(OpCode::StoreShared, L.sharedSlot(A->target()));
      }
      return;
    }
    case Stmt::Kind::Store: {
      const auto *St = cast<StoreStmt>(S);
      expr(St->index());
      expr(St->value());
      emit(OpCode::StoreArray, L.arraySlot(St->array()));
      return;
    }
    case Stmt::Kind::Seq:
      for (const Stmt *Sub : cast<SeqStmt>(S)->stmts())
        stmt(Sub);
      return;
    case Stmt::Kind::If: {
      const auto *I = cast<IfStmt>(S);
      expr(I->cond());
      size_t JZ = emitPatch(OpCode::JumpIfZero);
      stmt(I->thenStmt());
      size_t JEnd = emitPatch(OpCode::Jump);
      patch(JZ);
      stmt(I->elseStmt());
      patch(JEnd);
      return;
    }
    case Stmt::Kind::While: {
      const auto *W = cast<WhileStmt>(S);
      size_t Top = P.Code.size();
      expr(W->cond());
      size_t JZ = emitPatch(OpCode::JumpIfZero);
      stmt(W->body());
      emit(OpCode::Jump, static_cast<int64_t>(Top));
      patch(JZ);
      return;
    }
    case Stmt::Kind::LocalDecl: {
      const auto *D = cast<LocalDeclStmt>(S);
      expr(D->init());
      emit(OpCode::StoreLocal, L.localSlot(*M, D->name()));
      return;
    }
    }
  }

  Program finish() {
    emit(OpCode::Halt);
    return std::move(P);
  }

private:
  void emit(OpCode Op, int64_t Imm = 0) { P.Code.push_back({Op, Imm}); }
  size_t emitPatch(OpCode Op) {
    P.Code.push_back({Op, -1});
    return P.Code.size() - 1;
  }
  void patch(size_t At) {
    P.Code[At].Imm = static_cast<int64_t>(P.Code.size());
  }

  const SlotLayout &L;
  const Method *M;
  Program P;
};

} // namespace runtime
} // namespace expresso

Program runtime::compileExpr(const SlotLayout &L, const Expr *E,
                             const Method *M) {
  Compiler C(L, M);
  C.expr(E);
  return C.finish();
}

Program runtime::compileStmt(const SlotLayout &L, const Stmt *S,
                             const Method *M) {
  Compiler C(L, M);
  C.stmt(S);
  return C.finish();
}

//===----------------------------------------------------------------------===//
// VM
//===----------------------------------------------------------------------===//

int64_t runtime::execute(const Program &P, Frame &F) {
  std::vector<int64_t> Stack;
  Stack.reserve(16);
  size_t Pc = 0;
  auto pop = [&Stack] {
    int64_t V = Stack.back();
    Stack.pop_back();
    return V;
  };
  for (;;) {
    assert(Pc < P.Code.size() && "pc out of range");
    const Instr &I = P.Code[Pc++];
    switch (I.Op) {
    case OpCode::PushConst:
      Stack.push_back(I.Imm);
      break;
    case OpCode::LoadShared:
      Stack.push_back(F.Shared[static_cast<size_t>(I.Imm)]);
      break;
    case OpCode::StoreShared:
      F.Shared[static_cast<size_t>(I.Imm)] = pop();
      break;
    case OpCode::LoadLocal:
      Stack.push_back(F.Locals[static_cast<size_t>(I.Imm)]);
      break;
    case OpCode::StoreLocal:
      F.Locals[static_cast<size_t>(I.Imm)] = pop();
      break;
    case OpCode::LoadArray: {
      int64_t Idx = pop();
      auto &Arr = F.Arrays[static_cast<size_t>(I.Imm)];
      auto It = Arr.find(Idx);
      Stack.push_back(It == Arr.end() ? 0 : It->second);
      break;
    }
    case OpCode::StoreArray: {
      int64_t V = pop();
      int64_t Idx = pop();
      F.Arrays[static_cast<size_t>(I.Imm)][Idx] = V;
      break;
    }
    case OpCode::Add: {
      int64_t B = pop();
      Stack.back() += B;
      break;
    }
    case OpCode::Sub: {
      int64_t B = pop();
      Stack.back() -= B;
      break;
    }
    case OpCode::Mul: {
      int64_t B = pop();
      Stack.back() *= B;
      break;
    }
    case OpCode::Mod: {
      int64_t B = pop();
      Stack.back() = logic::mathMod(Stack.back(), B);
      break;
    }
    case OpCode::Neg:
      Stack.back() = -Stack.back();
      break;
    case OpCode::Not:
      Stack.back() = Stack.back() == 0 ? 1 : 0;
      break;
    case OpCode::CmpEq: {
      int64_t B = pop();
      Stack.back() = Stack.back() == B ? 1 : 0;
      break;
    }
    case OpCode::CmpLt: {
      int64_t B = pop();
      Stack.back() = Stack.back() < B ? 1 : 0;
      break;
    }
    case OpCode::CmpLe: {
      int64_t B = pop();
      Stack.back() = Stack.back() <= B ? 1 : 0;
      break;
    }
    case OpCode::Jump:
      Pc = static_cast<size_t>(I.Imm);
      break;
    case OpCode::JumpIfZero:
      if (pop() == 0)
        Pc = static_cast<size_t>(I.Imm);
      break;
    case OpCode::JumpIfNonZero:
      if (pop() != 0)
        Pc = static_cast<size_t>(I.Imm);
      break;
    case OpCode::Halt:
      return Stack.empty() ? 0 : Stack.back();
    }
  }
}

//===----------------------------------------------------------------------===//
// Disassembly
//===----------------------------------------------------------------------===//

std::string Program::str() const {
  static const char *Names[] = {
      "push",  "ldsh", "stsh", "ldlo",  "stlo", "ldar", "star",
      "add",   "sub",  "mul",  "mod",   "neg",  "not",  "cmpeq",
      "cmplt", "cmple", "jmp", "jz",    "jnz",  "halt"};
  std::ostringstream OS;
  for (size_t I = 0; I < Code.size(); ++I)
    OS << I << ": " << Names[static_cast<size_t>(Code[I].Op)] << " "
       << Code[I].Imm << "\n";
  return OS.str();
}
