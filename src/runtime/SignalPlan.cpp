//===- runtime/SignalPlan.cpp - Executable signaling plans ----------------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//

#include "runtime/SignalPlan.h"

#include <cassert>

using namespace expresso;
using namespace expresso::runtime;

size_t SignalPlan::numBroadcasts() const {
  size_t N = 0;
  for (const auto &[W, Es] : Entries)
    for (const PlanEntry &E : Es)
      N += E.Broadcast ? 1 : 0;
  return N;
}

size_t SignalPlan::numSignals() const {
  size_t N = 0;
  for (const auto &[W, Es] : Entries)
    for (const PlanEntry &E : Es)
      N += E.Broadcast ? 0 : 1;
  return N;
}

SignalPlan SignalPlan::fromPlacement(const core::PlacementResult &R) {
  SignalPlan Plan;
  Plan.LazyBroadcast = R.Options.LazyBroadcast;
  for (const core::CcrPlacement &P : R.Placements) {
    std::vector<PlanEntry> Es;
    Es.reserve(P.Decisions.size());
    for (const core::SignalDecision &D : P.Decisions)
      Es.push_back({D.Target, D.Conditional, D.Broadcast});
    if (!Es.empty())
      Plan.Entries.emplace(P.W, std::move(Es));
  }
  return Plan;
}

SignalPlanBuilder &SignalPlanBuilder::notify(const std::string &Method,
                                             unsigned CcrIdx,
                                             const std::string &TargetMethod,
                                             unsigned TargetCcrIdx,
                                             bool Conditional, bool Broadcast) {
  const frontend::Method *M = Sema.M->findMethod(Method);
  const frontend::Method *TM = Sema.M->findMethod(TargetMethod);
  assert(M && TM && "unknown method in gold plan");
  assert(CcrIdx < M->Body.size() && TargetCcrIdx < TM->Body.size());
  const frontend::WaitUntil *W = &M->Body[CcrIdx];
  const frontend::WaitUntil *TW = &TM->Body[TargetCcrIdx];
  PlanEntry E;
  E.Target = Sema.info(TW).Class;
  E.Conditional = Conditional;
  E.Broadcast = Broadcast;
  Plan.Entries[W].push_back(E);
  return *this;
}
