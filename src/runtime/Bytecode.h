//===- runtime/Bytecode.h - Compiled guards and bodies ----------*- C++ -*-===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small stack bytecode for monitor expressions and statements. The
/// saturation benchmarks evaluate guards on every wait/signal decision;
/// compiling them once removes the AST-walk overhead from the measurement
/// loop (the same role JIT'd bytecode plays for the JVM monitors the paper
/// measures). Programs are compiled per monitor against a slot layout:
/// shared scalar fields, shared arrays, and thread-local scalars each get
/// dense indices.
///
/// The VM is validated by differential tests against the tree-walking
/// interpreter on every benchmark monitor (see tests/BytecodeTest.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef EXPRESSO_RUNTIME_BYTECODE_H
#define EXPRESSO_RUNTIME_BYTECODE_H

#include "frontend/Ast.h"
#include "logic/TermOps.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace expresso {
namespace runtime {

/// Bytecode operations. Comparison/arithmetic pop operands and push the
/// result; booleans are 0/1 integers.
enum class OpCode : uint8_t {
  PushConst,   ///< push Imm
  LoadShared,  ///< push shared scalar slot Imm
  StoreShared, ///< pop into shared scalar slot Imm
  LoadLocal,   ///< push local scalar slot Imm
  StoreLocal,  ///< pop into local scalar slot Imm
  LoadArray,   ///< pop index; push SharedArrays[Imm][index]
  StoreArray,  ///< pop value, pop index; SharedArrays[Imm][index] = value
  Add,
  Sub,
  Mul,
  Mod, ///< mathematical modulus (result in [0, |rhs|))
  Neg,
  Not,
  CmpEq,
  CmpLt,
  CmpLe,
  Jump,        ///< pc = Imm
  JumpIfZero,  ///< pop; if zero, pc = Imm
  JumpIfNonZero,
  Halt, ///< stop; for expressions the result is the top of stack
};

/// One instruction: an opcode plus an immediate (constant, slot, target).
struct Instr {
  OpCode Op;
  int64_t Imm = 0;
};

/// A compiled program.
struct Program {
  std::vector<Instr> Code;
  std::string str() const; ///< disassembly, for tests/debugging
};

/// Slot layout shared by all programs of one monitor.
class SlotLayout {
public:
  /// Builds the layout: every scalar field, every array field, and every
  /// (method-qualified) local of the monitor.
  explicit SlotLayout(const frontend::Monitor &M);

  int sharedSlot(const std::string &Field) const;
  int arraySlot(const std::string &Field) const;
  /// Local slot of \p Name within \p M (unqualified name).
  int localSlot(const frontend::Method &M, const std::string &Name) const;

  size_t numSharedSlots() const { return SharedSlots.size(); }
  size_t numArraySlots() const { return ArraySlots.size(); }
  size_t numLocalSlots() const { return MaxLocalSlots; }

  /// Converts between interpreter assignments and frames (tests, engine
  /// boundaries).
  void packShared(const logic::Assignment &A, struct Frame &F) const;
  void unpackShared(const struct Frame &F, logic::Assignment &A) const;
  void packLocals(const frontend::Method &M, const logic::Assignment &A,
                  struct Frame &F) const;
  void unpackLocals(const frontend::Method &M, const struct Frame &F,
                    logic::Assignment &A) const;

  const frontend::Monitor &monitor() const { return M; }

private:
  friend class Compiler;
  const frontend::Monitor &M;
  std::map<std::string, int> SharedSlots;            // scalar fields
  std::map<std::string, int> ArraySlots;             // array fields
  std::map<std::string, int> LocalSlots;             // "method::name"
  std::map<std::string, bool> SharedIsBool;
  size_t MaxLocalSlots = 0;
};

/// Mutable machine state: shared scalars/arrays plus one thread's locals.
struct Frame {
  std::vector<int64_t> Shared;
  std::vector<std::map<int64_t, int64_t>> Arrays;
  std::vector<int64_t> Locals;
};

/// Compiles an expression of \p M (or a field initializer when M is null).
Program compileExpr(const SlotLayout &L, const frontend::Expr *E,
                    const frontend::Method *M);

/// Compiles a statement; the program leaves no stack residue.
Program compileStmt(const SlotLayout &L, const frontend::Stmt *S,
                    const frontend::Method *M);

/// Runs \p P on \p F; returns the top of stack (0 for statements).
int64_t execute(const Program &P, Frame &F);

} // namespace runtime
} // namespace expresso

#endif // EXPRESSO_RUNTIME_BYTECODE_H
