//===- runtime/SignalPlan.h - Executable signaling plans --------*- C++ -*-===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A SignalPlan is the runtime form of Algorithm 1's Σ map: for every CCR,
/// the list of (predicate class, conditional?, broadcast?) notifications to
/// perform after its body. Plans come from two sources:
///
///   * PlacementResult (the Expresso-generated discipline), and
///   * hand-written gold plans (the "Explicit" competitor in Figures 8/9,
///     written the way an expert would place signals by hand).
///
/// Keeping both on the same runtime engine makes the benchmark comparison
/// apples-to-apples: the engines differ only in signaling strategy.
///
//===----------------------------------------------------------------------===//

#ifndef EXPRESSO_RUNTIME_SIGNALPLAN_H
#define EXPRESSO_RUNTIME_SIGNALPLAN_H

#include "core/SignalPlacement.h"

#include <map>
#include <vector>

namespace expresso {
namespace runtime {

/// One notification to perform after a CCR body.
struct PlanEntry {
  const frontend::PredicateClass *Target = nullptr;
  bool Conditional = true;
  bool Broadcast = false;
};

/// Per-CCR notification lists plus the lazy-broadcast flag (§6).
struct SignalPlan {
  std::map<const frontend::WaitUntil *, std::vector<PlanEntry>> Entries;
  bool LazyBroadcast = true;

  const std::vector<PlanEntry> *entriesFor(const frontend::WaitUntil *W) const {
    auto It = Entries.find(W);
    return It == Entries.end() ? nullptr : &It->second;
  }

  /// Total signal/broadcast counts (for reporting).
  size_t numBroadcasts() const;
  size_t numSignals() const;

  /// Converts Algorithm 1's output into an executable plan.
  static SignalPlan fromPlacement(const core::PlacementResult &R);
};

/// Convenience builder for hand-written gold plans: addresses CCRs by
/// (method name, waituntil index within the method) and classes by the CCR
/// whose guard defines them.
class SignalPlanBuilder {
public:
  SignalPlanBuilder(const frontend::SemaInfo &Sema) : Sema(Sema) {}

  /// Adds a notification after \p Method's \p CcrIdx-th waituntil, targeting
  /// the guard class of \p TargetMethod's \p TargetCcrIdx-th waituntil.
  SignalPlanBuilder &notify(const std::string &Method, unsigned CcrIdx,
                            const std::string &TargetMethod,
                            unsigned TargetCcrIdx, bool Conditional,
                            bool Broadcast);

  SignalPlanBuilder &lazyBroadcast(bool Enabled) {
    Plan.LazyBroadcast = Enabled;
    return *this;
  }

  SignalPlan build() { return std::move(Plan); }

private:
  const frontend::SemaInfo &Sema;
  SignalPlan Plan;
};

} // namespace runtime
} // namespace expresso

#endif // EXPRESSO_RUNTIME_SIGNALPLAN_H
