//===- runtime/Engine.cpp - Monitor execution engines ---------------------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//

#include "runtime/Engine.h"

#include <cassert>
#include <condition_variable>
#include <list>
#include <map>
#include <mutex>
#include <set>

using namespace expresso;
using namespace expresso::runtime;
using namespace expresso::frontend;
using logic::Assignment;
using logic::Value;

MonitorEngine::~MonitorEngine() = default;

void MonitorEngine::call(const std::string &Method, Assignment Locals) {
  const frontend::Method *M = Sema.M->findMethod(Method);
  assert(M && "unknown monitor method");
  call(M, std::move(Locals));
}

namespace {

/// A blocked thread's parking slot. Lives on the waiter's stack.
struct Waiter {
  std::condition_variable Cv;
  bool Notified = false;
  const WaitUntil *W = nullptr;
  const PredicateClass *Class = nullptr;
  /// Placeholder-name -> value snapshot for conditional evaluation (§6).
  Assignment ClassArgs;
  /// The waiter's full locals, for AutoSynch-style guard re-evaluation.
  const Assignment *Locals = nullptr;
};

/// Common machinery: lock, interpreted state, waiter bookkeeping.
class EngineBase : public MonitorEngine {
public:
  EngineBase(const SemaInfo &Sema, const Assignment &Overrides)
      : MonitorEngine(Sema), Shared(initialState(*Sema.M, Overrides)) {}

  Assignment snapshot() override {
    std::unique_lock<std::mutex> L(Mtx);
    return Shared;
  }

  EngineStats stats() override {
    std::unique_lock<std::mutex> L(Mtx);
    return Stats;
  }

  void call(const Method *M, Assignment Locals) override {
    std::unique_lock<std::mutex> L(Mtx);
    ++Stats.Calls;
    for (const WaitUntil &W : M->Body) {
      awaitGuard(W, Locals, L);
      Env E{&Shared, &Locals};
      execStmt(W.Body, E);
      afterBody(W, L);
    }
  }

protected:
  /// Blocks until W's guard holds (monitor locked on entry and exit).
  void awaitGuard(const WaitUntil &W, Assignment &Locals,
                  std::unique_lock<std::mutex> &L) {
    Env E{&Shared, &Locals};
    bool FirstCheck = true;
    while (true) {
      ++Stats.PredicateEvals;
      if (evalExpr(W.Guard, E).asBool())
        break;
      if (!FirstCheck) {
        // Woken, but a racing thread consumed the resource first. Forward
        // the notification so the logical signal is not swallowed by a
        // waiter that can no longer use it.
        ++Stats.SpuriousWakeups;
        forwardFailedWake(W);
      }
      FirstCheck = false;
      ++Stats.Blocks;
      Waiter Slot;
      Slot.W = &W;
      const CcrInfo &CI = Sema.info(&W);
      Slot.Class = CI.Class;
      // Snapshot the guard's local arguments for conditional signaling.
      for (size_t K = 0; K < CI.Class->Placeholders.size(); ++K) {
        const std::string &QualName = CI.ClassArgs[K]->varName();
        std::string Plain = QualName.substr(QualName.find("::") + 2);
        Slot.ClassArgs[CI.Class->Placeholders[K]->varName()] =
            Locals.at(Plain);
      }
      Slot.Locals = &Locals;
      registerWaiter(&Slot);
      Slot.Cv.wait(L, [&] { return Slot.Notified; });
      ++Stats.Wakeups;
    }
    guardPassed(W, L);
  }

  /// Hooks specialized per engine. All run with the monitor locked.
  virtual void registerWaiter(Waiter *W) = 0;
  virtual void afterBody(const WaitUntil &W,
                         std::unique_lock<std::mutex> &L) = 0;
  virtual void guardPassed(const WaitUntil &W,
                           std::unique_lock<std::mutex> &L) {
    (void)W;
    (void)L;
  }
  /// Called when a woken waiter finds its guard false again and is about to
  /// re-block: pass the notification to another eligible waiter.
  virtual void forwardFailedWake(const WaitUntil &W) { (void)W; }

  /// Evaluates a predicate class for a specific waiter (shared state plus
  /// the waiter's class-argument snapshot).
  bool classHolds(const PredicateClass *Q, const Waiter *Wt) {
    ++Stats.PredicateEvals;
    Assignment Asg = Shared;
    if (Wt)
      for (const auto &[Name, V] : Wt->ClassArgs)
        Asg[Name] = V;
    return logic::evaluateBool(Q->Canonical, Asg);
  }

  std::mutex Mtx;
  Assignment Shared;
  EngineStats Stats;
};

//===----------------------------------------------------------------------===//
// ExplicitEngine
//===----------------------------------------------------------------------===//

class ExplicitEngine final : public EngineBase {
public:
  ExplicitEngine(const SemaInfo &Sema, SignalPlan Plan,
                 const Assignment &Overrides)
      : EngineBase(Sema, Overrides), Plan(std::move(Plan)) {
    // Classes that receive a lazy broadcast need chain re-signaling after
    // every waituntil guarded by them (§6).
    if (this->Plan.LazyBroadcast)
      for (const auto &[W, Es] : this->Plan.Entries)
        for (const PlanEntry &E : Es)
          if (E.Broadcast)
            ChainClasses.insert(E.Target);
  }

  std::string name() const override { return "expresso-explicit"; }

private:
  void registerWaiter(Waiter *W) override {
    ClassWaiters[W->Class].push_back(W);
  }

  void afterBody(const WaitUntil &W, std::unique_lock<std::mutex> &L) override {
    (void)L;
    // Lazy-broadcast chain (§6): `if (p) signal(p)` after every waituntil
    // whose guard class receives a lazy broadcast — the first woken thread
    // passes the wave on instead of one broadcaster waking everyone.
    const CcrInfo &CI = Sema.info(&W);
    if (ChainClasses.count(CI.Class))
      wakeOne(CI.Class, /*CheckPredicate=*/true);
    const auto *Entries = Plan.entriesFor(&W);
    if (!Entries)
      return;
    for (const PlanEntry &E : *Entries) {
      if (E.Broadcast) {
        if (Plan.LazyBroadcast)
          wakeOne(E.Target, /*CheckPredicate=*/true);
        else
          wakeAll(E.Target, E.Conditional);
      } else {
        wakeOne(E.Target, E.Conditional);
      }
    }
  }

  void wakeOne(const PredicateClass *Q, bool CheckPredicate) {
    auto It = ClassWaiters.find(Q);
    if (It == ClassWaiters.end())
      return;
    auto &Listing = It->second;
    for (auto WIt = Listing.begin(); WIt != Listing.end(); ++WIt) {
      Waiter *Wt = *WIt;
      if (CheckPredicate && !classHolds(Q, Wt))
        continue;
      Wt->Notified = true;
      Wt->Cv.notify_one();
      Listing.erase(WIt);
      return;
    }
  }

  void wakeAll(const PredicateClass *Q, bool CheckPredicate) {
    auto It = ClassWaiters.find(Q);
    if (It == ClassWaiters.end())
      return;
    auto &Listing = It->second;
    for (auto WIt = Listing.begin(); WIt != Listing.end();) {
      Waiter *Wt = *WIt;
      if (CheckPredicate && !classHolds(Q, Wt)) {
        ++WIt;
        continue;
      }
      Wt->Notified = true;
      Wt->Cv.notify_one();
      WIt = Listing.erase(WIt);
    }
  }

  void forwardFailedWake(const WaitUntil &W) override {
    wakeOne(Sema.info(&W).Class, /*CheckPredicate=*/true);
  }

  SignalPlan Plan;
  std::map<const PredicateClass *, std::list<Waiter *>> ClassWaiters;
  std::set<const PredicateClass *> ChainClasses;
};

//===----------------------------------------------------------------------===//
// AutoSynchEngine
//===----------------------------------------------------------------------===//

class AutoSynchEngine final : public EngineBase {
public:
  AutoSynchEngine(const SemaInfo &Sema, const Assignment &Overrides)
      : EngineBase(Sema, Overrides) {}

  std::string name() const override { return "autosynch"; }

private:
  void registerWaiter(Waiter *W) override { Waiters.push_back(W); }

  void afterBody(const WaitUntil &W, std::unique_lock<std::mutex> &L) override {
    (void)W;
    (void)L;
    scanAndWakeOne();
  }

  void forwardFailedWake(const WaitUntil &W) override {
    (void)W;
    scanAndWakeOne();
  }

  /// Evaluate every waiting thread's guard against the current state; wake
  /// the first satisfied one (FIFO). The cascade continues when that thread
  /// exits the monitor.
  void scanAndWakeOne() {
    for (auto It = Waiters.begin(); It != Waiters.end(); ++It) {
      Waiter *Wt = *It;
      ++Stats.PredicateEvals;
      Env E{&Shared, const_cast<Assignment *>(Wt->Locals)};
      if (!evalExpr(Wt->W->Guard, E).asBool())
        continue;
      Wt->Notified = true;
      Wt->Cv.notify_one();
      Waiters.erase(It);
      return;
    }
  }

  std::list<Waiter *> Waiters;
};

//===----------------------------------------------------------------------===//
// NaiveEngine
//===----------------------------------------------------------------------===//

class NaiveEngine final : public EngineBase {
public:
  NaiveEngine(const SemaInfo &Sema, const Assignment &Overrides)
      : EngineBase(Sema, Overrides) {}

  std::string name() const override { return "naive-broadcast"; }

private:
  void registerWaiter(Waiter *W) override { Waiters.push_back(W); }

  void afterBody(const WaitUntil &W, std::unique_lock<std::mutex> &L) override {
    (void)W;
    (void)L;
    // Wake everyone; they re-check their own guards (thundering herd).
    for (Waiter *Wt : Waiters) {
      Wt->Notified = true;
      Wt->Cv.notify_one();
    }
    Waiters.clear();
  }

  std::list<Waiter *> Waiters;
};

} // namespace

std::unique_ptr<MonitorEngine>
runtime::createExplicitEngine(const SemaInfo &Sema, SignalPlan Plan,
                              const Assignment &ConfigOverrides) {
  return std::make_unique<ExplicitEngine>(Sema, std::move(Plan),
                                          ConfigOverrides);
}

std::unique_ptr<MonitorEngine>
runtime::createAutoSynchEngine(const SemaInfo &Sema,
                               const Assignment &ConfigOverrides) {
  return std::make_unique<AutoSynchEngine>(Sema, ConfigOverrides);
}

std::unique_ptr<MonitorEngine>
runtime::createNaiveEngine(const SemaInfo &Sema,
                           const Assignment &ConfigOverrides) {
  return std::make_unique<NaiveEngine>(Sema, ConfigOverrides);
}
