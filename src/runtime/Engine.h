//===- runtime/Engine.h - Monitor execution engines -------------*- C++ -*-===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Real-thread monitor execution. All engines share one substrate — a
/// monitor mutex, interpreted guards/bodies, and FIFO per-waiter condition
/// slots — and differ ONLY in when and whom they wake:
///
///   * ExplicitEngine   executes a SignalPlan (Expresso output or a
///                      hand-written gold plan): the Figures 8/9 "Expresso"
///                      and "Explicit" series;
///   * AutoSynchEngine  re-evaluates every waiting thread's predicate at
///                      each monitor exit and wakes the first satisfied one
///                      (Hung & Garg's run-time approach, the paper's
///                      baseline);
///   * NaiveEngine      broadcasts every waiter at each exit (the classic
///                      implicit-monitor implementation Buhr et al. measured
///                      at 10-50x slowdowns) — used in ablations.
///
/// The per-waiter condition slots give targeted wakeups (no thundering
/// herd), FIFO fairness, and the §6 local-variable snapshots: a waiter's
/// class-argument values are recorded so conditional signals can evaluate
/// the blocked thread's predicate instance.
///
//===----------------------------------------------------------------------===//

#ifndef EXPRESSO_RUNTIME_ENGINE_H
#define EXPRESSO_RUNTIME_ENGINE_H

#include "frontend/Interp.h"
#include "frontend/Sema.h"
#include "runtime/SignalPlan.h"

#include <cstdint>
#include <memory>

namespace expresso {
namespace runtime {

/// Counters exposed by every engine (monotone, read after quiescence).
struct EngineStats {
  uint64_t Calls = 0;          ///< monitor method invocations
  uint64_t Blocks = 0;         ///< times a thread had to wait
  uint64_t Wakeups = 0;        ///< waiter notifications delivered
  uint64_t SpuriousWakeups = 0;///< woken with a still-false guard
  uint64_t PredicateEvals = 0; ///< run-time predicate evaluations
};

/// A running monitor instance; thread-safe by construction.
class MonitorEngine {
public:
  virtual ~MonitorEngine();

  /// Executes method \p M atomically with the given parameter values
  /// (unqualified names). Blocks as dictated by the waituntil guards.
  virtual void call(const frontend::Method *M, logic::Assignment Locals) = 0;

  /// Convenience: look up the method by name.
  void call(const std::string &Method, logic::Assignment Locals = {});

  /// Locked snapshot of the shared state.
  virtual logic::Assignment snapshot() = 0;

  virtual EngineStats stats() = 0;
  virtual std::string name() const = 0;

  const frontend::SemaInfo &sema() const { return Sema; }

protected:
  explicit MonitorEngine(const frontend::SemaInfo &Sema) : Sema(Sema) {}
  const frontend::SemaInfo &Sema;
};

/// Explicit-signal engine driven by a static plan.
std::unique_ptr<MonitorEngine>
createExplicitEngine(const frontend::SemaInfo &Sema, SignalPlan Plan,
                     const logic::Assignment &ConfigOverrides = {});

/// AutoSynch-like implicit engine (run-time predicate evaluation).
std::unique_ptr<MonitorEngine>
createAutoSynchEngine(const frontend::SemaInfo &Sema,
                      const logic::Assignment &ConfigOverrides = {});

/// Broadcast-everything implicit engine (Buhr-style baseline).
std::unique_ptr<MonitorEngine>
createNaiveEngine(const frontend::SemaInfo &Sema,
                  const logic::Assignment &ConfigOverrides = {});

} // namespace runtime
} // namespace expresso

#endif // EXPRESSO_RUNTIME_ENGINE_H
