//===- obs/Metrics.cpp - Unified metrics registry -------------------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace expresso {
namespace obs {

namespace {

/// Fixed, locale-independent double rendering for the stable text dump.
std::string formatDouble(double X) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.9g", X);
  return Buf;
}

} // namespace

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

Histogram::Histogram(std::vector<double> Bounds, size_t WindowSize)
    : Bounds(std::move(Bounds)), Window(WindowSize == 0 ? 1 : WindowSize),
      Buckets(this->Bounds.size() + 1, 0) {
  assert(std::is_sorted(this->Bounds.begin(), this->Bounds.end()) &&
         "histogram bounds must be ascending");
}

void Histogram::observe(double X) {
  std::lock_guard<std::mutex> Lock(Mu);
  size_t I =
      std::lower_bound(Bounds.begin(), Bounds.end(), X) - Bounds.begin();
  ++Buckets[I];
  ++Count;
  Sum += X;
  Samples.push_back(X);
  while (Samples.size() > Window)
    Samples.pop_front();
}

double Histogram::percentile(double Q) const {
  // The daemon's historical latency computation, verbatim (bit-compatible
  // StatusResponse p50/p99): copy the window, nth_element at Q * (n - 1).
  std::vector<double> Sample;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Sample.assign(Samples.begin(), Samples.end());
  }
  if (Sample.empty())
    return 0;
  size_t I = static_cast<size_t>(Q * static_cast<double>(Sample.size() - 1));
  std::nth_element(Sample.begin(), Sample.begin() + I, Sample.end());
  return Sample[I];
}

uint64_t Histogram::count() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Count;
}

double Histogram::sum() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Sum;
}

std::vector<uint64_t> Histogram::bucketCounts() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Buckets;
}

std::vector<double> Histogram::defaultLatencyBounds() {
  return {0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
          0.25,  0.5,    1.0,   2.5,  5.0,   10.0};
}

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

Counter &Registry::counter(const std::string &Name, const std::string &Help) {
  std::lock_guard<std::mutex> Lock(Mu);
  Entry &E = Metrics[Name];
  if (!E.C) {
    E.K = Entry::Kind::Counter;
    E.Help = Help;
    E.C = std::make_unique<Counter>();
  }
  return *E.C;
}

Gauge &Registry::gauge(const std::string &Name, const std::string &Help) {
  std::lock_guard<std::mutex> Lock(Mu);
  Entry &E = Metrics[Name];
  if (!E.G) {
    E.K = Entry::Kind::Gauge;
    E.Help = Help;
    E.G = std::make_unique<Gauge>();
  }
  return *E.G;
}

Histogram &Registry::histogram(const std::string &Name,
                               std::vector<double> Bounds, size_t WindowSize,
                               const std::string &Help) {
  std::lock_guard<std::mutex> Lock(Mu);
  Entry &E = Metrics[Name];
  if (!E.H) {
    E.K = Entry::Kind::Histogram;
    E.Help = Help;
    E.H = std::make_unique<Histogram>(std::move(Bounds), WindowSize);
  }
  return *E.H;
}

std::string Registry::renderText() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::string Out;
  for (const auto &KV : Metrics) {
    const std::string &Name = KV.first;
    const Entry &E = KV.second;
    if (!E.Help.empty())
      Out += "# HELP " + Name + " " + E.Help + "\n";
    switch (E.K) {
    case Entry::Kind::Counter:
      Out += "# TYPE " + Name + " counter\n";
      Out += Name + " " + std::to_string(E.C->value()) + "\n";
      break;
    case Entry::Kind::Gauge:
      Out += "# TYPE " + Name + " gauge\n";
      Out += Name + " " + formatDouble(E.G->value()) + "\n";
      break;
    case Entry::Kind::Histogram: {
      Out += "# TYPE " + Name + " histogram\n";
      const std::vector<double> &Bounds = E.H->bounds();
      std::vector<uint64_t> Buckets = E.H->bucketCounts();
      uint64_t Cum = 0;
      for (size_t I = 0; I < Bounds.size(); ++I) {
        Cum += Buckets[I];
        Out += Name + "_bucket{le=\"" + formatDouble(Bounds[I]) + "\"} " +
               std::to_string(Cum) + "\n";
      }
      Cum += Buckets.back();
      Out += Name + "_bucket{le=\"+Inf\"} " + std::to_string(Cum) + "\n";
      Out += Name + "_count " + std::to_string(E.H->count()) + "\n";
      Out += Name + "_sum " + formatDouble(E.H->sum()) + "\n";
      Out += Name + "_p50 " + formatDouble(E.H->percentile(0.5)) + "\n";
      Out += Name + "_p99 " + formatDouble(E.H->percentile(0.99)) + "\n";
      break;
    }
    }
  }
  return Out;
}

} // namespace obs
} // namespace expresso
