//===- obs/Trace.cpp - Low-overhead span tracer ---------------------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//

#include "obs/Trace.h"

#include <algorithm>
#include <atomic>
#include <cstdio>

namespace expresso {
namespace obs {

namespace {

/// Process-unique tracer ids; never reused, so a stale thread-local cache
/// entry from a destroyed tracer can never match a live one.
std::atomic<uint64_t> NextTracerId{1};

/// One-entry per-thread cache mapping the most recent tracer this thread
/// recorded into to its buffer. A single entry suffices: a thread records
/// into one tracer at a time (one traced run per request).
struct TlsCache {
  uint64_t TracerId = 0;
  void *Buf = nullptr;
};
thread_local TlsCache Cache;

void appendJsonString(std::string &Out, const std::string &S) {
  Out.push_back('"');
  Out += jsonEscape(S);
  Out.push_back('"');
}

} // namespace

std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x",
                      static_cast<unsigned>(static_cast<unsigned char>(C)));
        Out += Buf;
      } else {
        Out.push_back(C);
      }
    }
  }
  return Out;
}

Tracer::Tracer()
    : Id(NextTracerId.fetch_add(1, std::memory_order_relaxed)),
      Epoch(WallTimer::Clock::now()) {}

Tracer::~Tracer() = default;

Tracer::ThreadBuf &Tracer::threadBuf() {
  if (Cache.TracerId == Id)
    return *static_cast<ThreadBuf *>(Cache.Buf);
  std::lock_guard<std::mutex> Lock(Mu);
  Bufs.push_back(std::make_unique<ThreadBuf>());
  ThreadBuf &B = *Bufs.back();
  B.Tid = static_cast<uint32_t>(Bufs.size() - 1);
  Cache.TracerId = Id;
  Cache.Buf = &B;
  return B;
}

void Tracer::record(const char *Name, uint64_t StartNs, uint64_t EndNs,
                    std::string Args) {
  ThreadBuf &B = threadBuf();
  SpanRecord R;
  R.Name = Name;
  R.StartNs = StartNs;
  R.DurNs = EndNs >= StartNs ? EndNs - StartNs : 0;
  R.Tid = B.Tid;
  R.Args = std::move(Args);
  B.Spans.push_back(std::move(R));
}

size_t Tracer::spanCount() const {
  std::lock_guard<std::mutex> Lock(Mu);
  size_t N = 0;
  for (const auto &B : Bufs)
    N += B->Spans.size();
  return N;
}

std::vector<SpanRecord> Tracer::snapshot() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<SpanRecord> Out;
  for (const auto &B : Bufs)
    Out.insert(Out.end(), B->Spans.begin(), B->Spans.end());
  std::stable_sort(Out.begin(), Out.end(),
                   [](const SpanRecord &A, const SpanRecord &B) {
                     if (A.Tid != B.Tid)
                       return A.Tid < B.Tid;
                     return A.StartNs < B.StartNs;
                   });
  return Out;
}

std::string Tracer::exportChromeJson() const {
  std::vector<SpanRecord> Spans = snapshot();
  uint32_t MaxTid = 0;
  for (const SpanRecord &S : Spans)
    MaxTid = std::max(MaxTid, S.Tid);

  std::string Out = "{\"traceEvents\":[";
  bool First = true;
  char Buf[160];

  // Thread metadata so Perfetto shows stable lane names.
  uint32_t Lanes = Spans.empty() ? 0 : MaxTid + 1;
  for (uint32_t T = 0; T < Lanes; ++T) {
    if (!First)
      Out.push_back(',');
    First = false;
    std::snprintf(Buf, sizeof(Buf),
                  "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                  "\"tid\":%u,\"args\":{\"name\":\"%s-%u\"}}",
                  T, T == 0 ? "main" : "worker", T);
    Out += Buf;
  }

  for (const SpanRecord &S : Spans) {
    if (!First)
      Out.push_back(',');
    First = false;
    Out += "{\"name\":";
    appendJsonString(Out, S.Name);
    std::snprintf(Buf, sizeof(Buf),
                  ",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,"
                  "\"tid\":%u",
                  static_cast<double>(S.StartNs) / 1000.0,
                  static_cast<double>(S.DurNs) / 1000.0, S.Tid);
    Out += Buf;
    if (!S.Args.empty()) {
      Out += ",\"args\":{";
      Out += S.Args;
      Out.push_back('}');
    }
    Out += "}";
  }
  Out += "]}";
  return Out;
}

void Span::arg(const char *Key, const char *Value) {
  if (!T)
    return;
  if (!Args.empty())
    Args.push_back(',');
  Args.push_back('"');
  Args += jsonEscape(Key);
  Args += "\":\"";
  Args += jsonEscape(Value);
  Args.push_back('"');
}

void Span::arg(const char *Key, uint64_t Value) {
  if (!T)
    return;
  if (!Args.empty())
    Args.push_back(',');
  char Buf[48];
  std::snprintf(Buf, sizeof(Buf), "\"%s\":%llu", Key,
                static_cast<unsigned long long>(Value));
  Args += Buf;
}

} // namespace obs
} // namespace expresso
