//===- obs/Metrics.h - Unified metrics registry -----------------*- C++ -*-===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small metrics registry — counters, gauges, and fixed-bucket histograms
/// — unifying the daemon's previously ad-hoc accounting (outcome atomics
/// and the hand-rolled 512-entry latency window in service/Server) behind
/// one facility with a stable text dump (served over protocol v3's
/// MetricsRequest and `expresso --daemon-metrics`).
///
/// Bit-compatibility contract: obs::Histogram keeps an exact sliding sample
/// window (default 512 entries) alongside its buckets, and percentile()
/// reproduces the daemon's historical computation verbatim — copy the
/// window, nth_element at index `size_t(Q * (n-1))` — so the
/// StatusResponse latency fields are the same doubles, bit for bit, as
/// before the registry existed (pinned by the v2 status tests).
///
/// Counters and gauges are single atomics (safe to bump from any thread
/// with no lock); histogram observations take a short mutex — they happen
/// once per completed request, never on the solver hot path. renderText()
/// is deterministic: metrics sort by name, doubles print with a fixed
/// format.
///
//===----------------------------------------------------------------------===//

#ifndef EXPRESSO_OBS_METRICS_H
#define EXPRESSO_OBS_METRICS_H

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace expresso {
namespace obs {

/// Monotonically increasing event count.
class Counter {
public:
  /// Increments and returns the new value (so cadence checks like "every
  /// Nth event" need no separate atomic).
  uint64_t inc(uint64_t N = 1) {
    return V.fetch_add(N, std::memory_order_relaxed) + N;
  }
  uint64_t value() const { return V.load(std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> V{0};
};

/// A point-in-time value (queue depth, budget slots free, uptime).
class Gauge {
public:
  void set(double X) { V.store(X, std::memory_order_relaxed); }
  double value() const { return V.load(std::memory_order_relaxed); }

private:
  std::atomic<double> V{0.0};
};

/// Fixed-bucket histogram with an exact sliding sample window.
///
/// Buckets (cumulative counts per upper bound, +Inf implied) summarize the
/// full observation history for the text dump; the sample window backs
/// percentile() with the daemon's exact historical p50/p99 math (see the
/// file comment). Both views update under one short mutex per observe().
class Histogram {
public:
  /// \p Bounds must be ascending bucket upper bounds; an implicit +Inf
  /// bucket is appended. \p WindowSize bounds the percentile sample.
  explicit Histogram(std::vector<double> Bounds, size_t WindowSize = 512);

  void observe(double X);

  /// Exact percentile over the sliding window: copies the sample and takes
  /// nth_element at `size_t(Q * (n-1))`. Returns 0 while empty — matching
  /// StatusResponse's "0 until anything completes" behavior.
  double percentile(double Q) const;

  uint64_t count() const;
  double sum() const;
  const std::vector<double> &bounds() const { return Bounds; }
  /// Per-bucket counts, one per bound plus the +Inf overflow bucket.
  std::vector<uint64_t> bucketCounts() const;

  /// Default bounds for request-latency seconds (sub-ms to tens of
  /// seconds, roughly logarithmic).
  static std::vector<double> defaultLatencyBounds();

private:
  const std::vector<double> Bounds;
  const size_t Window;
  mutable std::mutex Mu;
  std::vector<uint64_t> Buckets; ///< Bounds.size() + 1 (overflow last)
  uint64_t Count = 0;
  double Sum = 0;
  std::deque<double> Samples; ///< last Window observations
};

/// Owns named metrics; registration is idempotent (the first registration
/// of a name wins and later calls return the same object), so call sites
/// can look metrics up by name without coordinating.
class Registry {
public:
  Registry() = default;
  Registry(const Registry &) = delete;
  Registry &operator=(const Registry &) = delete;

  Counter &counter(const std::string &Name, const std::string &Help = "");
  Gauge &gauge(const std::string &Name, const std::string &Help = "");
  Histogram &histogram(const std::string &Name, std::vector<double> Bounds,
                       size_t WindowSize = 512, const std::string &Help = "");

  /// Stable text dump (Prometheus-flavored): metrics ordered by name,
  /// `# HELP`/`# TYPE` headers, histogram buckets as cumulative
  /// `_bucket{le="..."}` lines plus `_count`/`_sum` and the exact
  /// window-backed `_p50`/`_p99`.
  std::string renderText() const;

private:
  struct Entry {
    enum class Kind { Counter, Gauge, Histogram } K = Kind::Counter;
    std::string Help;
    std::unique_ptr<Counter> C;
    std::unique_ptr<Gauge> G;
    std::unique_ptr<Histogram> H;
  };

  mutable std::mutex Mu;
  std::map<std::string, Entry> Metrics; ///< ordered => deterministic dump
};

} // namespace obs
} // namespace expresso

#endif // EXPRESSO_OBS_METRICS_H
