//===- obs/Trace.h - Low-overhead span tracer -------------------*- C++ -*-===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A low-overhead span tracer for the analysis pipeline. A Tracer collects
/// nested, thread-attributed phase spans — parse/sema, invariant inference
/// (abduction, Houdini rounds), per-CCR placement, VC batches, individual
/// solver queries with backend and cache-tier outcome — and exports them as
/// Chrome `trace_event` JSON (loadable in Perfetto / chrome://tracing, or
/// summarized by scripts/trace_summary.py).
///
/// Design constraints, in order:
///
///   1. *Byte-invisible to the analysis.* A tracer never touches a
///      TermContext, a stats counter, or a cache tier: it only reads wall
///      clocks and copies strings. Σ, PlacementStats, and every cache
///      counter are identical with tracing on or off (pinned by the
///      differential in tests/ObsTest.cpp).
///   2. *Free when disabled.* The pipeline threads a `Tracer *` that is
///      null by default (the same idiom as support::CancelToken): a
///      disabled span is a null pointer check and nothing else.
///   3. *No locks on the hot path.* Each recording thread appends to its
///      own buffer; the tracer-wide mutex is taken once per thread (buffer
///      registration) and at export. Timestamps come from the same
///      steady clock as support::WallTimer, so span durations line up with
///      the `*Seconds` stats and can never go negative under wall-clock
///      adjustment.
///
/// Concurrency contract: record() may race record() freely across threads;
/// snapshot()/exportChromeJson() must only run once the traced work has
/// quiesced (placeSignals has returned and its pool tasks joined) — exactly
/// when callers want to serialize the trace anyway.
///
//===----------------------------------------------------------------------===//

#ifndef EXPRESSO_OBS_TRACE_H
#define EXPRESSO_OBS_TRACE_H

#include "support/Timer.h"

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace expresso {
namespace obs {

/// One completed span. Name is a static string from the span taxonomy
/// (docs/OBSERVABILITY.md); Args is a pre-rendered JSON object body
/// (`"key":"value",...`, no braces), empty when the span carried none.
struct SpanRecord {
  const char *Name = "";
  uint64_t StartNs = 0; ///< steady-clock time since the tracer's epoch
  uint64_t DurNs = 0;
  uint32_t Tid = 0; ///< tracer-local thread index (registration order)
  std::string Args;
};

/// Collects spans from any number of threads. One Tracer per traced run
/// (one CLI invocation, one daemon request); cheap to construct.
class Tracer {
public:
  Tracer();
  ~Tracer();

  Tracer(const Tracer &) = delete;
  Tracer &operator=(const Tracer &) = delete;

  /// Nanoseconds since this tracer's construction, on WallTimer's steady
  /// clock.
  uint64_t nowNs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            WallTimer::Clock::now() - Epoch)
            .count());
  }

  /// Appends one completed span to the calling thread's buffer. Lock-free
  /// after the thread's first record against this tracer.
  void record(const char *Name, uint64_t StartNs, uint64_t EndNs,
              std::string Args);

  /// Total spans recorded so far (takes the registry mutex; see the
  /// quiescence contract above).
  size_t spanCount() const;

  /// All spans, ordered by (thread index, start time). Quiescence required.
  std::vector<SpanRecord> snapshot() const;

  /// Chrome trace_event JSON: `{"traceEvents":[...]}` with one complete
  /// ("ph":"X") event per span plus thread_name metadata. Timestamps are
  /// microseconds since the tracer epoch. Quiescence required.
  std::string exportChromeJson() const;

private:
  struct ThreadBuf {
    uint32_t Tid = 0;
    std::vector<SpanRecord> Spans;
  };

  /// The calling thread's buffer, registering it on first use (the only
  /// mutex acquisition on the record path, once per thread per tracer).
  ThreadBuf &threadBuf();

  const uint64_t Id; ///< process-unique, for the thread-local buffer cache
  const WallTimer::Clock::time_point Epoch;
  mutable std::mutex Mu; ///< guards Bufs (registration, snapshot/export)
  std::vector<std::unique_ptr<ThreadBuf>> Bufs;
};

/// RAII span: stamps the start time at construction, records itself on
/// destruction (or an explicit finish()). With a null tracer every member
/// is a no-op — the pipeline constructs spans unconditionally and pays one
/// branch when tracing is off.
class Span {
public:
  Span() = default;
  Span(Tracer *T, const char *Name) : T(T), Name(Name) {
    if (T)
      StartNs = T->nowNs();
  }

  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;
  Span(Span &&O) noexcept
      : T(O.T), Name(O.Name), StartNs(O.StartNs), Args(std::move(O.Args)) {
    O.T = nullptr;
  }
  Span &operator=(Span &&O) noexcept {
    if (this != &O) {
      finish();
      T = O.T;
      Name = O.Name;
      StartNs = O.StartNs;
      Args = std::move(O.Args);
      O.T = nullptr;
    }
    return *this;
  }

  ~Span() { finish(); }

  bool enabled() const { return T != nullptr; }

  /// Attach a key/value argument (rendered into the event's "args" object).
  /// No-ops when disabled, so callers may compute values lazily behind
  /// enabled() if they are expensive.
  void arg(const char *Key, const char *Value);
  void arg(const char *Key, const std::string &Value) {
    arg(Key, Value.c_str());
  }
  void arg(const char *Key, uint64_t Value);

  /// Records the span now (idempotent; the destructor calls it).
  void finish() {
    if (!T)
      return;
    T->record(Name, StartNs, T->nowNs(), std::move(Args));
    T = nullptr;
  }

private:
  Tracer *T = nullptr;
  const char *Name = "";
  uint64_t StartNs = 0;
  std::string Args; ///< accumulated `"k":v` fragments, comma-separated
};

/// Escapes \p S for inclusion inside a JSON string literal.
std::string jsonEscape(const std::string &S);

} // namespace obs
} // namespace expresso

#endif // EXPRESSO_OBS_TRACE_H
