//===- core/SignalPlacement.cpp - Algorithm 1: PlaceSignals -------------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
// The (w, p) main loop of Algorithm 1 runs either serially or fanned out
// across a support::ThreadPool: every pair's checks — skip (a),
// unconditional (b), and the per-w' signal/broadcast obligations (c) — read
// only shared-immutable state (invariant, sema, blocked-predicate
// instances) plus a once-computed Comm(w, M) memo, so pairs are independent
// validity workloads. Workers own private solver backends and share one
// sharded CachingSolver memo table; outcomes land in a slot array indexed
// by (CCR index, class index) and are merged in that order, so the parallel
// Σ is bit-for-bit the serial Σ.
//
// Two discharge modes fill the same outcome slots:
//
//  * one-shot (--incremental=off): every VC is a fresh absolute checkSat —
//    the paper-style baseline, fanned out pair by pair;
//  * incremental sessions (default): each (CCR, worker) pair opens a
//    solver::SolverSession that asserts the invariant once per worker and
//    the CCR guard once per CCR, discharges the per-class VCs as push/pop
//    deltas, and batches the CCR's independent no-signal checks into one
//    assumption-guarded solver call. The fan-out unit becomes the CCR (so a
//    session's prefix lives exactly as long as its CCR's checks), but the
//    *logical* query sequence — which VCs are issued, with which terms,
//    under which early-exit conditions — is identical to one-shot mode, so
//    Σ, stats, and all cache counters match it byte for byte.
//
//===----------------------------------------------------------------------===//

#include "core/SignalPlacement.h"

#include "analysis/Commute.h"
#include "analysis/Hoare.h"
#include "logic/Printer.h"
#include "logic/Simplify.h"
#include "obs/Trace.h"
#include "solver/CachingSolver.h"
#include "solver/SolverSession.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"

#include <map>
#include <mutex>
#include <sstream>

using namespace expresso;
using namespace expresso::core;
using namespace expresso::frontend;
using namespace expresso::analysis;
using logic::Term;

const CcrPlacement &
PlacementResult::placementFor(const WaitUntil *W) const {
  for (const CcrPlacement &P : Placements)
    if (P.W == W)
      return P;
  assert(false && "CCR not in placement result");
  return Placements.front();
}

std::string PlacementResult::decisionSummary() const {
  std::ostringstream OS;
  OS << "monitor " << Sema->M->Name << ": invariant = "
     << logic::printTerm(Invariant) << "\n";
  for (const CcrPlacement &P : Placements) {
    const CcrInfo &CI = Sema->info(P.W);
    OS << "  " << CI.Parent->Name << " / ccr#" << P.W->Id << " guard ["
       << logic::printTerm(CI.Guard) << "]:";
    if (P.Decisions.empty()) {
      OS << " no signals\n";
      continue;
    }
    OS << "\n";
    for (const SignalDecision &D : P.Decisions) {
      OS << "    " << (D.Broadcast ? "broadcast" : "signal") << "("
         << logic::printTerm(D.Target->Canonical) << ", "
         << (D.Conditional ? "?" : "\xE2\x9C\x93") << ")\n";
    }
  }
  return OS.str();
}

std::string PlacementResult::summary() const {
  std::ostringstream OS;
  OS << decisionSummary();
  // The cache counters print unconditionally — a --no-cache run reports
  // uniform zeros rather than omitting the fields, so summaries keep one
  // stable shape across every cache configuration (and ablation diffs
  // line up row-for-row).
  OS << "  stats: " << Stats.HoareChecks << " hoare checks, "
     << Stats.SolverQueries << " solver queries";
  OS << " (" << Stats.Cache.Hits << " cache hits / " << Stats.Cache.Misses
     << " misses, " << static_cast<int>(Stats.Cache.hitRate() * 100 + 0.5)
     << "% hit rate)";
  if (Stats.Cache.diskLookups() > 0) {
    OS << " (persistent tier: " << Stats.Cache.DiskHits << " hits / "
       << Stats.Cache.DiskMisses << " misses, "
       << static_cast<int>(Stats.Cache.diskHitRate() * 100 + 0.5)
       << "% hit rate)";
  }
  OS << "\n";
  return OS.str();
}

namespace {

/// The outcome of one (w, p) pair: whether a decision is emitted, the
/// decision itself, and the stat deltas the pair contributed. Stat deltas
/// merge by summation, so totals are order-independent.
struct PairOutcome {
  bool Emit = false;
  SignalDecision D;
  uint64_t HoareChecks = 0;
  uint64_t NoSignalProved = 0;
  uint64_t CommutativityWins = 0;
};

/// Once-computed Comm(w, M) slot (§4.3). call_once gives the lazy memo
/// single-computation semantics under concurrency, so parallel runs issue
/// exactly the same commutativity queries a serial run does.
struct CommEntry {
  std::once_flag Flag;
  bool Value = false;
};

/// Shared-immutable inputs of the per-pair checks, plus the Comm memo.
struct PairEnv {
  logic::TermContext &C;
  const SemaInfo &Sema;
  const PlacementOptions &Options;
  const Term *I = nullptr;

  /// Fresh instance of each predicate class: the blocked thread's predicate
  /// p' (§4.2). One instance per class suffices; the variables are fresh
  /// with respect to every method's locals.
  std::map<const PredicateClass *, const Term *> BlockedPred;

  /// Comm(w, M) memo aligned with Sema.Ccrs (via CcrIndex).
  std::vector<CommEntry> Comm;
  std::map<const WaitUntil *, size_t> CcrIndex;

  PairEnv(logic::TermContext &C, const SemaInfo &Sema,
          const PlacementOptions &Options)
      : C(C), Sema(Sema), Options(Options) {
    for (const auto &QPtr : Sema.Classes) {
      logic::Substitution Subst;
      for (const Term *P : QPtr->Placeholders)
        Subst.emplace(P, C.freshVar(P->varName() + "!blk", P->sort()));
      BlockedPred[QPtr.get()] = logic::substitute(C, QPtr->Canonical, Subst);
    }
    Comm = std::vector<CommEntry>(Sema.Ccrs.size());
    for (size_t Idx = 0; Idx < Sema.Ccrs.size(); ++Idx)
      CcrIndex.emplace(Sema.Ccrs[Idx].W, Idx);
  }

  bool commutes(const CcrInfo &W, solver::SmtSolver &Solver) {
    CommEntry &E = Comm[CcrIndex.at(W.W)];
    std::call_once(E.Flag, [&] {
      E.Value = Options.UseCommutativity &&
                commutesWithAll(C, Sema, Solver, W);
    });
    return E.Value;
  }
};

/// Renaming of a woken CCR's locals for the §4.3 sequential composition
/// Body(w); Body(w'). The woken executor is a *third* thread, distinct
/// from both the signaller (w's unrenamed locals) and the still-blocked
/// thread whose predicate instance appears in the postcondition (the
/// blocked-instance variables) — so all of its locals become fresh unknowns.
logic::Substitution wokenRename(PairEnv &Env, const CcrInfo &Woken) {
  logic::Substitution Rename;
  for (const auto &[Name, V] : Env.Sema.LocalVars)
    if (Name.rfind(Woken.Parent->Name + "::", 0) == 0)
      Rename.emplace(V, Env.C.freshVar(Name + "!wk", V->sort()));
  return Rename;
}

/// Checks one (w, p) pair of Algorithm 1's main loop. Reads only
/// shared-immutable state from \p Env (plus the once-semantics Comm memo),
/// so concurrent calls on distinct pairs are safe as long as each worker
/// brings its own \p Checker and \p Solver.
PairOutcome checkPair(PairEnv &Env, const CcrInfo &W,
                      const PredicateClass *Q, HoareChecker &Checker,
                      solver::SmtSolver &Solver) {
  logic::TermContext &C = Env.C;
  const Term *I = Env.I;
  const Term *P = Env.BlockedPred.at(Q);
  PairOutcome Out;

  // (a) No-signal check: {I ∧ Guard(w) ∧ ¬p'} Body(w) {¬p'}.
  HoareTriple NoSig;
  NoSig.Pre = C.and_({I, W.Guard, C.not_(P)});
  NoSig.Body = W.W->Body;
  NoSig.InMethod = W.Parent;
  NoSig.Post = C.not_(P);
  ++Out.HoareChecks;
  if (Checker.proves(NoSig)) {
    ++Out.NoSignalProved;
    return Out;
  }

  Out.Emit = true;
  Out.D.Target = Q;

  // (b) Unconditional check: {I ∧ Guard(w) ∧ ¬p'} Body(w) {p'}.
  HoareTriple Uncond = NoSig;
  Uncond.Post = P;
  ++Out.HoareChecks;
  Out.D.Conditional = !Checker.proves(Uncond);

  // (c) Signal-vs-broadcast: every CCR guarded by p must falsify p when
  // it runs — or commute, with the §4.3 sequential-composition check.
  WpEngine &Wp = Checker.wpEngine();
  bool SingleSuffices = true;
  for (const CcrInfo &Woken : Env.Sema.Ccrs) {
    if (Woken.Class != Q)
      continue;
    HoareTriple OneWake;
    OneWake.Pre = C.and_({I, Woken.Guard, P});
    OneWake.Body = Woken.W->Body;
    OneWake.InMethod = Woken.Parent;
    OneWake.Post = C.not_(P);
    ++Out.HoareChecks;
    if (Checker.proves(OneWake))
      continue;
    // §4.3: Comm(w', M) ∧ {I ∧ Guard(w) ∧ ¬p'} Body(w); Body(w') {¬p'}.
    bool Saved = false;
    if (Env.Options.UseCommutativity && Env.commutes(Woken, Solver)) {
      logic::Substitution Rename = wokenRename(Env, Woken);
      const Term *Inner =
          Wp.wp(Woken.W->Body, Woken.Parent, C.not_(P), &Rename);
      const Term *Outer = Wp.wp(W.W->Body, W.Parent, Inner);
      const Term *VC = logic::simplify(
          C, C.implies(C.and_({I, W.Guard, C.not_(P)}), Outer));
      ++Out.HoareChecks;
      if (Solver.isValid(VC)) {
        Saved = true;
        ++Out.CommutativityWins;
      }
    }
    if (!Saved) {
      SingleSuffices = false;
      break;
    }
  }
  Out.D.Broadcast = !SingleSuffices;
  return Out;
}

//===----------------------------------------------------------------------===//
// Incremental-session discharge (Options.Incremental)
//===----------------------------------------------------------------------===//

/// Scoped analogue of HoareChecker::proves: the same verification condition
/// and the same trivial-formula shortcuts, but the solver query goes through
/// the session at the given scope. Soundness: the negated VC of a triple
/// whose Pre is I ∧ Guard(w) ∧ ... entails I and Guard(w), so it may be
/// discharged under those prefixes; one-wake triples carry the *woken*
/// CCR's guard and may only use the invariant scope.
enum class VcScope { CcrGuard, InvariantOnly };

bool provesScoped(logic::TermContext &C, HoareChecker &Checker,
                  solver::SolverSession &S, VcScope Scope,
                  const HoareTriple &T) {
  const Term *VC = Checker.verificationCondition(T);
  if (VC->isTrue())
    return true;
  if (VC->isFalse())
    return false;
  solver::CheckResult R = Scope == VcScope::CcrGuard
                              ? S.checkSatUnderGuard(C.not_(VC))
                              : S.checkSatUnderInvariant(C.not_(VC));
  return R.TheAnswer == solver::Answer::Unsat;
}

/// Checks (b) and (c) for one (w, p) pair through the session — the pair's
/// no-signal check (a) already failed. Mirrors checkPair's logic and query
/// order exactly; only the discharge mechanism differs.
void completePairIncremental(PairEnv &Env, const CcrInfo &W,
                             const PredicateClass *Q, HoareChecker &Checker,
                             solver::SolverSession &S, PairOutcome &Out) {
  logic::TermContext &C = Env.C;
  const Term *I = Env.I;
  const Term *P = Env.BlockedPred.at(Q);
  Out.Emit = true;
  Out.D.Target = Q;

  // (b) Unconditional check: {I ∧ Guard(w) ∧ ¬p'} Body(w) {p'}.
  HoareTriple Uncond;
  Uncond.Pre = C.and_({I, W.Guard, C.not_(P)});
  Uncond.Body = W.W->Body;
  Uncond.InMethod = W.Parent;
  Uncond.Post = P;
  ++Out.HoareChecks;
  Out.D.Conditional =
      !provesScoped(C, Checker, S, VcScope::CcrGuard, Uncond);

  // (c) Signal-vs-broadcast, with the §4.3 fallback.
  WpEngine &Wp = Checker.wpEngine();
  bool SingleSuffices = true;
  for (const CcrInfo &Woken : Env.Sema.Ccrs) {
    if (Woken.Class != Q)
      continue;
    HoareTriple OneWake;
    OneWake.Pre = C.and_({I, Woken.Guard, P});
    OneWake.Body = Woken.W->Body;
    OneWake.InMethod = Woken.Parent;
    OneWake.Post = C.not_(P);
    ++Out.HoareChecks;
    if (provesScoped(C, Checker, S, VcScope::InvariantOnly, OneWake))
      continue;
    bool Saved = false;
    if (Env.Options.UseCommutativity &&
        Env.commutes(Woken, S.absoluteSolver())) {
      logic::Substitution Rename = wokenRename(Env, Woken);
      const Term *Inner =
          Wp.wp(Woken.W->Body, Woken.Parent, C.not_(P), &Rename);
      const Term *Outer = Wp.wp(W.W->Body, W.Parent, Inner);
      const Term *VC = logic::simplify(
          C, C.implies(C.and_({I, W.Guard, C.not_(P)}), Outer));
      ++Out.HoareChecks;
      // One-shot mode issues this query unconditionally (no trivial-VC
      // shortcut in checkPair's §4.3 branch); so does the session.
      if (S.checkSatUnderGuard(C.not_(VC)).TheAnswer ==
          solver::Answer::Unsat) {
        Saved = true;
        ++Out.CommutativityWins;
      }
    }
    if (!Saved) {
      SingleSuffices = false;
      break;
    }
  }
  Out.D.Broadcast = !SingleSuffices;
}

/// Runs every predicate class of one CCR through an incremental session:
/// guard scope entered once, the classes' no-signal VCs batched into one
/// assumption-guarded check, then (b)/(c) as push/pop deltas per failing
/// class. Writes the CCR's NumClasses outcome slots.
void checkCcrIncremental(PairEnv &Env, const CcrInfo &W,
                         HoareChecker &Checker, solver::SolverSession &S,
                         PairOutcome *Slots) {
  logic::TermContext &C = Env.C;
  const Term *I = Env.I;
  const size_t NumClasses = Env.Sema.Classes.size();
  S.setInvariant(I);
  S.enterCcr(W.Guard);

  // (a) No-signal checks, all classes of this CCR, batched. Each is issued
  // unconditionally in one-shot mode too, so batching changes the solver
  // call shape but never the query multiset.
  std::vector<const Term *> Batch;
  std::vector<size_t> BatchIdx;
  std::vector<signed char> AProved(NumClasses, 0);
  for (size_t Qi = 0; Qi < NumClasses; ++Qi) {
    const PredicateClass *Q = Env.Sema.Classes[Qi].get();
    const Term *P = Env.BlockedPred.at(Q);
    HoareTriple NoSig;
    NoSig.Pre = C.and_({I, W.Guard, C.not_(P)});
    NoSig.Body = W.W->Body;
    NoSig.InMethod = W.Parent;
    NoSig.Post = C.not_(P);
    ++Slots[Qi].HoareChecks;
    const Term *VC = Checker.verificationCondition(NoSig);
    if (VC->isTrue()) {
      AProved[Qi] = 1;
    } else if (!VC->isFalse()) {
      Batch.push_back(C.not_(VC));
      BatchIdx.push_back(Qi);
    }
  }
  std::vector<solver::CheckResult> BatchRs;
  {
    obs::Span BatchSpan(Env.Options.Trace, "vc.batch");
    BatchSpan.arg("n", static_cast<uint64_t>(Batch.size()));
    BatchRs = S.checkSatBatchUnderGuard(Batch);
  }
  for (size_t K = 0; K < BatchIdx.size(); ++K)
    if (BatchRs[K].TheAnswer == solver::Answer::Unsat)
      AProved[BatchIdx[K]] = 1;

  for (size_t Qi = 0; Qi < NumClasses; ++Qi) {
    if (AProved[Qi]) {
      ++Slots[Qi].NoSignalProved;
      continue;
    }
    completePairIncremental(Env, W, Env.Sema.Classes[Qi].get(), Checker, S,
                            Slots[Qi]);
  }
  S.exitCcr();
}

/// Per-worker state for the parallel fan-out: a private solver handle (a
/// session of the shared memo table, or a raw backend when caching is off)
/// and its own Hoare checker. In incremental mode the worker instead owns a
/// raw backend plus a SolverSession over it (declaration order matters:
/// Session borrows RawBackend, Checker borrows Session's absolute view).
struct PlacementWorker {
  std::unique_ptr<solver::SmtSolver> Solver;
  std::unique_ptr<solver::SmtSolver> RawBackend;
  std::unique_ptr<solver::SolverSession> Session;
  std::unique_ptr<HoareChecker> Checker;
  WorkerStats Stats;
};

} // namespace

PlacementResult core::placeSignals(logic::TermContext &C,
                                   const SemaInfo &Sema,
                                   solver::SmtSolver &BackendSolver,
                                   const PlacementOptions &Options,
                                   const Term *ProvidedInvariant) {
  PlacementResult Result;
  Result.Sema = &Sema;
  Result.Options = Options;

  // All solver traffic — invariant inference, Hoare checks, commutativity —
  // goes through one memo table so identical VCs are decided once. When the
  // caller already passes a CachingSolver (the bench harness does, to share
  // the cache across multiple placements), reuse it rather than stacking a
  // second layer.
  solver::CachingSolver *SharedCache =
      dynamic_cast<solver::CachingSolver *>(&BackendSolver);
  std::unique_ptr<solver::CachingSolver> LocalCache;
  if (Options.CacheQueries && !SharedCache) {
    LocalCache = std::make_unique<solver::CachingSolver>(BackendSolver);
    SharedCache = LocalCache.get();
  }
  solver::SmtSolver &Solver =
      SharedCache ? static_cast<solver::SmtSolver &>(*SharedCache)
                  : BackendSolver;
  uint64_t QueriesBefore = Solver.numQueries();
  solver::CacheStats StatsBefore =
      SharedCache ? SharedCache->stats() : solver::CacheStats();

  // Cooperative cancellation: hand the token to the discharge path — the
  // backends poll it inside each solve, and the caching layer stops
  // publishing to the persistent store once it expires. Attached only when
  // a token exists, so deadline-free runs execute exactly as before.
  if (Options.Cancel)
    Solver.setCancelToken(Options.Cancel);

  // Tracing: the root span covers the whole run; the caching tier records
  // per-query spans while attached. The guard detaches it before return —
  // the tracer's lifetime is the caller's (often one daemon request), while
  // a shared cache may outlive many.
  obs::Span PlaceSpan(Options.Trace, "place");
  struct TracerDetach {
    solver::CachingSolver *CS = nullptr;
    ~TracerDetach() {
      if (CS)
        CS->setTracer(nullptr);
    }
  } TraceGuard;
  if (Options.Trace && SharedCache) {
    SharedCache->setTracer(Options.Trace);
    TraceGuard.CS = SharedCache;
  }

  // --- Monitor invariant (Algorithm 2). -----------------------------------
  // Runs serially, before the fan-out, so the invariant (and every term it
  // interns) is identical whatever Jobs is.
  WallTimer InvTimer;
  obs::Span InvSpan(Options.Trace, "invariants");
  uint64_t InvariantWorkerQueries = 0;
  if (ProvidedInvariant) {
    Result.Invariant = ProvidedInvariant;
  } else if (Options.UseInvariant) {
    // The Houdini fixpoint inherits the placement fan-out unless the caller
    // configured it separately.
    InvariantConfig InvCfg = Options.Invariants;
    if (InvCfg.Jobs == 0) {
      InvCfg.Jobs = Options.Jobs;
      InvCfg.WorkerSolvers = Options.WorkerSolvers;
    }
    InvCfg.Incremental = Options.Incremental;
    InvCfg.Cancel = Options.Cancel;
    InvCfg.Trace = Options.Trace;
    InvariantResult IR = inferMonitorInvariant(C, Sema, Solver, InvCfg);
    Result.Invariant = IR.Invariant;
    InvariantWorkerQueries = IR.WorkerQueries;
  } else {
    Result.Invariant = C.getTrue();
  }
  Result.Stats.InvariantSeconds = InvTimer.elapsedSeconds();
  InvSpan.finish();

  WallTimer PlaceTimer;
  PairEnv Env(C, Sema, Options);
  Env.I = Result.Invariant;

  // --- Main loop: (w, p) in CCRs(M) x Guards(M). ---------------------------
  // One slot per pair; flat index = CcrIdx * NumClasses + ClassIdx. Both the
  // serial loop and the parallel fan-out fill the same slots, and the merge
  // below walks them in order — that ordering, not completion order, is
  // what makes parallel Σ deterministic.
  const size_t NumClasses = Sema.Classes.size();
  const size_t NumPairs = Sema.Ccrs.size() * NumClasses;
  std::vector<PairOutcome> Outcomes(NumPairs);

  unsigned Jobs = Options.Jobs;
  if (Jobs > NumPairs)
    Jobs = static_cast<unsigned>(NumPairs);

  // Incremental sessions engage when requested and the backend that would
  // discharge the queries speaks the session API. The discharge answers are
  // identical either way; this only selects the mechanism.
  solver::SmtSolver &Underlying =
      SharedCache ? SharedCache->backend() : BackendSolver;
  const bool WantSessions = Options.Incremental;

  std::vector<PlacementWorker> Workers;
  bool ParSessions = false;
  if (Jobs > 1) {
    if (WantSessions && Options.WorkerSolvers) {
      // Session workers own *raw* backends (the session needs push/pop on
      // the backend itself); the shared memo table stays on the path inside
      // SolverSession, so counters remain centralized and deterministic.
      std::vector<std::unique_ptr<solver::SmtSolver>> Raw =
          solver::mintWorkerBackends(C, Options.WorkerSolvers, Jobs);
      if (Raw.empty()) {
        Jobs = 1; // factory cannot serve this context: stay serial
      } else if (Raw.front()->supportsIncremental()) {
        ParSessions = true;
        Workers.resize(Jobs);
        for (unsigned J = 0; J < Jobs; ++J) {
          Workers[J].RawBackend = std::move(Raw[J]);
          Workers[J].Session = std::make_unique<solver::SolverSession>(
              SharedCache, *Workers[J].RawBackend);
          Workers[J].Checker = std::make_unique<HoareChecker>(
              C, Sema, Workers[J].Session->absoluteSolver());
        }
      } else {
        // Backend without session support: one-shot worker handles.
        Workers.resize(Jobs);
        for (unsigned J = 0; J < Jobs; ++J) {
          Workers[J].Solver =
              SharedCache ? SharedCache->makeSession(std::move(Raw[J]))
                          : std::move(Raw[J]);
          Workers[J].Checker =
              std::make_unique<HoareChecker>(C, Sema, *Workers[J].Solver);
        }
      }
    } else {
      std::vector<std::unique_ptr<solver::SmtSolver>> Handles =
          solver::makeWorkerSolvers(C, Options.WorkerSolvers, SharedCache,
                                    Jobs);
      if (Handles.empty()) {
        Jobs = 1; // no factory, or it cannot serve this context: stay serial
      } else {
        Workers.resize(Jobs);
        for (unsigned J = 0; J < Jobs; ++J) {
          Workers[J].Solver = std::move(Handles[J]);
          Workers[J].Checker =
              std::make_unique<HoareChecker>(C, Sema, *Workers[J].Solver);
        }
      }
    }
  }
  if (Options.Cancel)
    for (PlacementWorker &W : Workers) {
      if (W.RawBackend)
        W.RawBackend->setCancelToken(Options.Cancel);
      if (W.Solver)
        W.Solver->setCancelToken(Options.Cancel);
    }
  Result.Stats.JobsUsed = Jobs;

  // Loop-boundary cancellation polls below break out at the next pair/CCR;
  // mid-check expiry resolves through the backends' own polls (every
  // remaining query answers Unknown near-instantly, the conservative
  // direction), so the whole run winds down within ~one solver poll
  // interval either way.
  auto Expired = [&Options] {
    return Options.Cancel && Options.Cancel->expired();
  };

  if (Jobs <= 1) {
    if (WantSessions && Underlying.supportsIncremental()) {
      Result.Stats.IncrementalSessions = true;
      solver::SolverSession Sess(SharedCache, Underlying);
      HoareChecker Checker(C, Sema, Sess.absoluteSolver());
      for (size_t CcrIdx = 0; CcrIdx < Sema.Ccrs.size(); ++CcrIdx) {
        if (Expired())
          break; // partial; flagged Cancelled below
        obs::Span CcrSpan(Options.Trace, "ccr");
        CcrSpan.arg("ccr", static_cast<uint64_t>(CcrIdx));
        checkCcrIncremental(Env, Sema.Ccrs[CcrIdx], Checker, Sess,
                            &Outcomes[CcrIdx * NumClasses]);
      }
    } else {
      HoareChecker Checker(C, Sema, Solver);
      for (size_t Pair = 0; Pair < NumPairs; ++Pair) {
        if (Expired())
          break; // partial; flagged Cancelled below
        obs::Span PairSpan(Options.Trace, "pair");
        PairSpan.arg("ccr", static_cast<uint64_t>(Pair / NumClasses));
        PairSpan.arg("class", static_cast<uint64_t>(Pair % NumClasses));
        Outcomes[Pair] = checkPair(Env, Sema.Ccrs[Pair / NumClasses],
                                   Sema.Classes[Pair % NumClasses].get(),
                                   Checker, Solver);
      }
    }
  } else if (ParSessions) {
    // Session fan-out is CCR-granular: one task = one CCR = one session
    // scope, so the guard prefix is asserted once per (CCR, worker) and the
    // no-signal batch spans the whole CCR. Slot-ordered merging keeps Σ
    // byte-identical to serial whatever the schedule.
    Result.Stats.IncrementalSessions = true;
    support::ThreadPool Pool(Jobs);
    Pool.parallelFor(Sema.Ccrs.size(), [&](unsigned WorkerId, size_t CcrIdx) {
      if (Expired())
        return; // leave the slots untouched; flagged Cancelled below
      PlacementWorker &W = Workers[WorkerId];
      WallTimer CcrTimer;
      obs::Span CcrSpan(Options.Trace, "ccr");
      CcrSpan.arg("ccr", static_cast<uint64_t>(CcrIdx));
      checkCcrIncremental(Env, Sema.Ccrs[CcrIdx], *W.Checker, *W.Session,
                          &Outcomes[CcrIdx * NumClasses]);
      W.Stats.BusySeconds += CcrTimer.elapsedSeconds();
      W.Stats.Pairs += NumClasses;
    });
    for (PlacementWorker &W : Workers) {
      W.Stats.SolverQueries = W.Session->numQueries();
      Result.Stats.Workers.push_back(W.Stats);
    }
  } else {
    support::ThreadPool Pool(Jobs);
    Pool.parallelFor(NumPairs, [&](unsigned WorkerId, size_t Pair) {
      if (Expired())
        return; // leave the slot untouched; flagged Cancelled below
      PlacementWorker &W = Workers[WorkerId];
      WallTimer PairTimer;
      obs::Span PairSpan(Options.Trace, "pair");
      PairSpan.arg("ccr", static_cast<uint64_t>(Pair / NumClasses));
      PairSpan.arg("class", static_cast<uint64_t>(Pair % NumClasses));
      Outcomes[Pair] = checkPair(Env, Sema.Ccrs[Pair / NumClasses],
                                 Sema.Classes[Pair % NumClasses].get(),
                                 *W.Checker, *W.Solver);
      W.Stats.BusySeconds += PairTimer.elapsedSeconds();
      ++W.Stats.Pairs;
    });
    for (PlacementWorker &W : Workers) {
      W.Stats.SolverQueries = W.Solver->numQueries();
      Result.Stats.Workers.push_back(W.Stats);
    }
  }

  // --- Deterministic merge, in (CCR index, class index) order. -------------
  for (size_t CcrIdx = 0; CcrIdx < Sema.Ccrs.size(); ++CcrIdx) {
    CcrPlacement Placement;
    Placement.W = Sema.Ccrs[CcrIdx].W;
    for (size_t ClassIdx = 0; ClassIdx < NumClasses; ++ClassIdx) {
      const PairOutcome &Out = Outcomes[CcrIdx * NumClasses + ClassIdx];
      ++Result.Stats.PairsConsidered;
      Result.Stats.HoareChecks += Out.HoareChecks;
      Result.Stats.NoSignalProved += Out.NoSignalProved;
      Result.Stats.CommutativityWins += Out.CommutativityWins;
      if (!Out.Emit)
        continue;
      if (Out.D.Broadcast)
        ++Result.Stats.Broadcasts;
      else
        ++Result.Stats.Signals;
      if (!Out.D.Conditional)
        ++Result.Stats.Unconditional;
      Placement.Decisions.push_back(Out.D);
    }
    Result.Placements.push_back(std::move(Placement));
  }

  Result.Stats.PlacementSeconds = PlaceTimer.elapsedSeconds();
  // With a shared cache, worker sessions funnel every lookup through the
  // shared counters, so the delta covers serial and parallel traffic alike.
  // Without one, workers query their private backends directly and their
  // counts add to the caller solver's (which served invariant inference).
  Result.Stats.SolverQueries =
      Solver.numQueries() - QueriesBefore + InvariantWorkerQueries;
  if (!SharedCache)
    for (const WorkerStats &W : Result.Stats.Workers)
      Result.Stats.SolverQueries += W.SolverQueries;
  if (SharedCache) {
    solver::CacheStats Now = SharedCache->stats();
    Result.Stats.Cache.Hits = Now.Hits - StatsBefore.Hits;
    Result.Stats.Cache.Misses = Now.Misses - StatsBefore.Misses;
    Result.Stats.Cache.DiskHits = Now.DiskHits - StatsBefore.DiskHits;
    Result.Stats.Cache.DiskMisses = Now.DiskMisses - StatsBefore.DiskMisses;
  }
  // The flag is the token's *final* state, not the loops' break
  // bookkeeping: even a pair that "finished" after expiry may have absorbed
  // a cancellation Unknown into a conservative decision, so any expiry
  // during the run taints the whole result. A never-fired token reads
  // false here, leaving completed runs byte-identical to deadline-free ones.
  Result.Cancelled = Options.Cancel && Options.Cancel->expired();
  if (PlaceSpan.enabled()) {
    PlaceSpan.arg("ccrs", static_cast<uint64_t>(Sema.Ccrs.size()));
    PlaceSpan.arg("classes", static_cast<uint64_t>(NumClasses));
    PlaceSpan.arg("jobs", static_cast<uint64_t>(Jobs));
    PlaceSpan.arg("queries",
                  static_cast<uint64_t>(Result.Stats.SolverQueries));
  }
  return Result;
}
