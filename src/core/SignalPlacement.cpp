//===- core/SignalPlacement.cpp - Algorithm 1: PlaceSignals -------------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//

#include "core/SignalPlacement.h"

#include "analysis/Commute.h"
#include "analysis/Hoare.h"
#include "logic/Printer.h"
#include "logic/Simplify.h"
#include "solver/CachingSolver.h"
#include "support/Timer.h"

#include <map>
#include <sstream>

using namespace expresso;
using namespace expresso::core;
using namespace expresso::frontend;
using namespace expresso::analysis;
using logic::Term;

const CcrPlacement &
PlacementResult::placementFor(const WaitUntil *W) const {
  for (const CcrPlacement &P : Placements)
    if (P.W == W)
      return P;
  assert(false && "CCR not in placement result");
  return Placements.front();
}

std::string PlacementResult::summary() const {
  std::ostringstream OS;
  OS << "monitor " << Sema->M->Name << ": invariant = "
     << logic::printTerm(Invariant) << "\n";
  for (const CcrPlacement &P : Placements) {
    const CcrInfo &CI = Sema->info(P.W);
    OS << "  " << CI.Parent->Name << " / ccr#" << P.W->Id << " guard ["
       << logic::printTerm(CI.Guard) << "]:";
    if (P.Decisions.empty()) {
      OS << " no signals\n";
      continue;
    }
    OS << "\n";
    for (const SignalDecision &D : P.Decisions) {
      OS << "    " << (D.Broadcast ? "broadcast" : "signal") << "("
         << logic::printTerm(D.Target->Canonical) << ", "
         << (D.Conditional ? "?" : "\xE2\x9C\x93") << ")\n";
    }
  }
  OS << "  stats: " << Stats.HoareChecks << " hoare checks, "
     << Stats.SolverQueries << " solver queries";
  if (Options.CacheQueries) {
    OS << " (" << Stats.Cache.Hits << " cache hits / " << Stats.Cache.Misses
       << " misses, " << static_cast<int>(Stats.Cache.hitRate() * 100 + 0.5)
       << "% hit rate)";
  }
  OS << "\n";
  return OS.str();
}

PlacementResult core::placeSignals(logic::TermContext &C,
                                   const SemaInfo &Sema,
                                   solver::SmtSolver &BackendSolver,
                                   const PlacementOptions &Options,
                                   const Term *ProvidedInvariant) {
  PlacementResult Result;
  Result.Sema = &Sema;
  Result.Options = Options;

  // All solver traffic — invariant inference, Hoare checks, commutativity —
  // goes through one memo table so identical VCs are decided once. When the
  // caller already passes a CachingSolver (the bench harness does, to share
  // the cache across multiple placements), reuse it rather than stacking a
  // second layer.
  solver::CachingSolver *SharedCache =
      dynamic_cast<solver::CachingSolver *>(&BackendSolver);
  std::unique_ptr<solver::CachingSolver> LocalCache;
  if (Options.CacheQueries && !SharedCache) {
    LocalCache = std::make_unique<solver::CachingSolver>(BackendSolver);
    SharedCache = LocalCache.get();
  }
  solver::SmtSolver &Solver =
      SharedCache ? static_cast<solver::SmtSolver &>(*SharedCache)
                  : BackendSolver;
  uint64_t QueriesBefore = Solver.numQueries();
  solver::CacheStats StatsBefore =
      SharedCache ? SharedCache->stats() : solver::CacheStats();

  // --- Monitor invariant (Algorithm 2). -----------------------------------
  WallTimer InvTimer;
  if (ProvidedInvariant) {
    Result.Invariant = ProvidedInvariant;
  } else if (Options.UseInvariant) {
    InvariantResult IR =
        inferMonitorInvariant(C, Sema, Solver, Options.Invariants);
    Result.Invariant = IR.Invariant;
  } else {
    Result.Invariant = C.getTrue();
  }
  Result.Stats.InvariantSeconds = InvTimer.elapsedSeconds();
  const Term *I = Result.Invariant;

  WallTimer PlaceTimer;
  HoareChecker Checker(C, Sema, Solver);
  WpEngine &Wp = Checker.wpEngine();

  // Fresh instance of each predicate class: the blocked thread's predicate
  // p' (§4.2). One instance per class suffices; the variables are fresh
  // with respect to every method's locals.
  std::map<const PredicateClass *, const Term *> BlockedPred;
  std::map<const PredicateClass *, std::vector<const Term *>> BlockedArgs;
  for (const auto &QPtr : Sema.Classes) {
    logic::Substitution Subst;
    std::vector<const Term *> Args;
    for (const Term *P : QPtr->Placeholders) {
      const Term *F = C.freshVar(P->varName() + "!blk", P->sort());
      Subst.emplace(P, F);
      Args.push_back(F);
    }
    BlockedPred[QPtr.get()] = logic::substitute(C, QPtr->Canonical, Subst);
    BlockedArgs[QPtr.get()] = std::move(Args);
  }

  // Lazy cache of Comm(w, M) (§4.3).
  std::map<const WaitUntil *, bool> CommCache;
  auto commutes = [&](const CcrInfo &W) {
    auto It = CommCache.find(W.W);
    if (It != CommCache.end())
      return It->second;
    bool R = Options.UseCommutativity &&
             commutesWithAll(C, Sema, Solver, W);
    CommCache.emplace(W.W, R);
    return R;
  };

  // Renaming of a woken CCR's locals for the §4.3 sequential composition
  // Body(w); Body(w'). The woken executor is a *third* thread, distinct
  // from both the signaller (w's unrenamed locals) and the still-blocked
  // thread whose predicate instance appears in the postcondition (the
  // BlockedArgs variables) — so all of its locals become fresh unknowns.
  auto wokenRename = [&](const CcrInfo &Woken) {
    logic::Substitution Rename;
    for (const auto &[Name, V] : Sema.LocalVars)
      if (Name.rfind(Woken.Parent->Name + "::", 0) == 0)
        Rename.emplace(V, C.freshVar(Name + "!wk", V->sort()));
    return Rename;
  };

  // --- Main loop: (w, p) in CCRs(M) x Guards(M). ---------------------------
  for (const CcrInfo &W : Sema.Ccrs) {
    CcrPlacement Placement;
    Placement.W = W.W;

    for (const auto &QPtr : Sema.Classes) {
      const PredicateClass *Q = QPtr.get();
      const Term *P = BlockedPred[Q];
      ++Result.Stats.PairsConsidered;

      // (a) No-signal check: {I ∧ Guard(w) ∧ ¬p'} Body(w) {¬p'}.
      HoareTriple NoSig;
      NoSig.Pre = C.and_({I, W.Guard, C.not_(P)});
      NoSig.Body = W.W->Body;
      NoSig.InMethod = W.Parent;
      NoSig.Post = C.not_(P);
      ++Result.Stats.HoareChecks;
      if (Checker.proves(NoSig)) {
        ++Result.Stats.NoSignalProved;
        continue;
      }

      SignalDecision D;
      D.Target = Q;

      // (b) Unconditional check: {I ∧ Guard(w) ∧ ¬p'} Body(w) {p'}.
      HoareTriple Uncond = NoSig;
      Uncond.Post = P;
      ++Result.Stats.HoareChecks;
      D.Conditional = !Checker.proves(Uncond);

      // (c) Signal-vs-broadcast: every CCR guarded by p must falsify p when
      // it runs — or commute, with the §4.3 sequential-composition check.
      bool SingleSuffices = true;
      for (const CcrInfo &Woken : Sema.Ccrs) {
        if (Woken.Class != Q)
          continue;
        HoareTriple OneWake;
        OneWake.Pre = C.and_({I, Woken.Guard, P});
        OneWake.Body = Woken.W->Body;
        OneWake.InMethod = Woken.Parent;
        OneWake.Post = C.not_(P);
        ++Result.Stats.HoareChecks;
        if (Checker.proves(OneWake))
          continue;
        // §4.3: Comm(w', M) ∧ {I ∧ Guard(w) ∧ ¬p'} Body(w); Body(w') {¬p'}.
        bool Saved = false;
        if (Options.UseCommutativity && commutes(Woken)) {
          logic::Substitution Rename = wokenRename(Woken);
          const Term *Inner =
              Wp.wp(Woken.W->Body, Woken.Parent, C.not_(P), &Rename);
          const Term *Outer = Wp.wp(W.W->Body, W.Parent, Inner);
          const Term *VC = logic::simplify(
              C, C.implies(C.and_({I, W.Guard, C.not_(P)}), Outer));
          ++Result.Stats.HoareChecks;
          if (Solver.isValid(VC)) {
            Saved = true;
            ++Result.Stats.CommutativityWins;
          }
        }
        if (!Saved) {
          SingleSuffices = false;
          break;
        }
      }
      D.Broadcast = !SingleSuffices;

      if (D.Broadcast)
        ++Result.Stats.Broadcasts;
      else
        ++Result.Stats.Signals;
      if (!D.Conditional)
        ++Result.Stats.Unconditional;
      Placement.Decisions.push_back(D);
    }
    Result.Placements.push_back(std::move(Placement));
  }
  Result.Stats.PlacementSeconds = PlaceTimer.elapsedSeconds();
  Result.Stats.SolverQueries = Solver.numQueries() - QueriesBefore;
  if (SharedCache) {
    Result.Stats.Cache.Hits = SharedCache->stats().Hits - StatsBefore.Hits;
    Result.Stats.Cache.Misses =
        SharedCache->stats().Misses - StatsBefore.Misses;
  }
  return Result;
}
