//===- core/SignalPlacement.h - Algorithm 1: PlaceSignals -------*- C++ -*-===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's primary contribution: given an implicit-signal monitor and a
/// monitor invariant I, decide for every CCR w and every guard predicate
/// class p
///
///   (a) whether w must notify threads blocked on p at all
///         skip iff  |= {I ∧ Guard(w) ∧ ¬p'} Body(w) {¬p'}
///   (b) whether the notification can be unconditional
///         ✓   iff  |= {I ∧ Guard(w) ∧ ¬p'} Body(w) {p'}
///   (c) whether one thread suffices (signal) or all must wake (broadcast)
///         signal iff for every CCR w' guarded by p:
///              |= {I ∧ Guard(w') ∧ p'} Body(w') {¬p'}
///           or (§4.3)  Comm(w',M) ∧
///              |= {I ∧ Guard(w) ∧ ¬p'} Body(w); Body(w') {¬p'}
///
/// where p' is the predicate class with its thread-local variables renamed
/// to fresh ones (§4.2) — the blocked thread is never the executing thread.
/// Every Unknown from the solver resolves in the conservative direction
/// (signal rather than skip, conditional rather than unconditional,
/// broadcast rather than signal), so incompleteness costs performance only.
///
//===----------------------------------------------------------------------===//

#ifndef EXPRESSO_CORE_SIGNALPLACEMENT_H
#define EXPRESSO_CORE_SIGNALPLACEMENT_H

#include "analysis/Invariants.h"
#include "frontend/Sema.h"
#include "solver/CachingSolver.h"
#include "solver/SolverFactory.h"

#include <string>
#include <vector>

namespace expresso {
namespace obs {
class Tracer;
}
namespace core {

/// One notification emitted after a CCR body: the (p, cond, bcast) triples
/// of Algorithm 1's Σ map.
struct SignalDecision {
  const frontend::PredicateClass *Target = nullptr;
  bool Conditional = true; ///< '?' — evaluate p at run time before waking.
  bool Broadcast = false;  ///< notify all threads blocked on p.
};

/// Decisions for one CCR.
struct CcrPlacement {
  const frontend::WaitUntil *W = nullptr;
  std::vector<SignalDecision> Decisions;
};

/// Tuning knobs (each is an ablation axis; see bench/ablation_*).
struct PlacementOptions {
  bool UseInvariant = true;      ///< infer and use a monitor invariant
  bool UseCommutativity = true;  ///< §4.3 Equation-2 weakening
  bool LazyBroadcast = true;     ///< §6 chained broadcasts (runtime/codegen)
  bool CacheQueries = true;      ///< memoize checkSat via solver::CachingSolver
  /// Discharge Algorithm 1's checks through incremental solver sessions:
  /// each (CCR, worker) pair opens a scoped session that asserts the
  /// invariant/guard prefix once and pushes per-predicate-class VCs as
  /// deltas, batching the independent no-signal checks of one CCR into a
  /// single assumption-guarded solver call. Σ, PlacementStats, and every
  /// cache counter are byte-identical with this on or off (the differential
  /// contract of tests/IncrementalSolverTest.cpp); off is the
  /// one-context-per-query ablation baseline. Ignored when the backend has
  /// no session support.
  bool Incremental = true;
  /// Worker threads for the (CCR, predicate-class) fan-out; 1 = serial.
  /// Every pair's checks are an independent validity workload, so placement
  /// parallelizes embarrassingly; the merge is deterministic (ordered by
  /// (CCR index, class index)), so any Jobs value yields the same Σ.
  unsigned Jobs = 1;
  /// Mints one private solver backend per worker (backends are not
  /// thread-safe). Required for Jobs > 1; when invalid, placement runs
  /// serially on the caller's solver.
  solver::SolverFactory WorkerSolvers;
  analysis::InvariantConfig Invariants;
  /// Cooperative cancellation/deadline token. Polled at Hoare-check
  /// granularity by the placement loops (and once per theory round inside
  /// the backends); once expired, the run winds down within about one
  /// solver poll interval and the result carries Cancelled = true with
  /// whatever partial stats accrued. A token that never fires leaves every
  /// byte of the result untouched. Not owned; null disables.
  support::CancelToken *Cancel = nullptr;
  /// Span tracer (obs::Tracer): when attached, the run records nested,
  /// thread-attributed phase spans — invariant inference (forwarded into
  /// InvariantConfig::Trace), per-CCR sessions, per-pair checks, VC
  /// batches, and individual solver queries with their cache-tier outcome
  /// (attached to the CachingSolver for the duration of the run). Tracing
  /// is byte-invisible: Σ, every stat, and every cache counter are
  /// identical with it on or off (differential-pinned in
  /// tests/ObsTest.cpp). Not owned; null (the default) disables at the
  /// cost of one branch per span site.
  obs::Tracer *Trace = nullptr;
};

/// Per-worker accounting for one parallel placement run.
struct WorkerStats {
  uint64_t Pairs = 0;         ///< (w, p) pairs this worker processed
  uint64_t SolverQueries = 0; ///< checkSat lookups this worker issued
  double BusySeconds = 0;     ///< wall time inside pair checks
};

/// Aggregate statistics, used by Table-1 style reporting and ablations.
struct PlacementStats {
  size_t HoareChecks = 0;
  size_t PairsConsidered = 0;
  size_t NoSignalProved = 0;
  size_t Signals = 0;            ///< notify-one decisions
  size_t Broadcasts = 0;         ///< notify-all decisions
  size_t Unconditional = 0;
  size_t CommutativityWins = 0;  ///< broadcasts avoided via §4.3
  size_t SolverQueries = 0;      ///< checkSat calls issued by the pipeline
  solver::CacheStats Cache;      ///< query-cache accounting (zero when off)
  double InvariantSeconds = 0;
  double PlacementSeconds = 0;
  /// True when the main loop discharged VCs through incremental solver
  /// sessions (Options.Incremental on a session-capable backend). Not part
  /// of summary(): the output contract is that summaries are byte-identical
  /// across modes.
  bool IncrementalSessions = false;
  unsigned JobsUsed = 1;             ///< worker threads the fan-out ran with
  std::vector<WorkerStats> Workers;  ///< per-worker accounting (empty when serial)
};

/// The output of PlaceSignals: Σ plus provenance.
struct PlacementResult {
  const frontend::SemaInfo *Sema = nullptr;
  const logic::Term *Invariant = nullptr;
  PlacementOptions Options;
  /// Aligned with Sema->Ccrs.
  std::vector<CcrPlacement> Placements;
  PlacementStats Stats;
  /// True when Options.Cancel expired before the run finished. The
  /// Placements/Stats are partial; callers must not treat them as Σ (the
  /// daemon answers DeadlineExceeded and publishes nothing).
  bool Cancelled = false;

  const CcrPlacement &placementFor(const frontend::WaitUntil *W) const;

  /// The invariant and the Σ decisions, without the stats trailer. This is
  /// the determinism contract of the parallel engine: for any Jobs value it
  /// is byte-identical to a serial run's.
  std::string decisionSummary() const;

  /// Human-readable summary (used by the CLI and EXPERIMENTS.md artifacts):
  /// decisionSummary() plus the stats trailer.
  std::string summary() const;
};

/// Runs Algorithm 1 (with the §4.2/§4.3 refinements). If \p
/// ProvidedInvariant is non-null it is used as I (callers must ensure it is
/// a real monitor invariant); otherwise Algorithm 2 infers one (or `true`
/// when Options.UseInvariant is off).
PlacementResult placeSignals(logic::TermContext &C,
                             const frontend::SemaInfo &Sema,
                             solver::SmtSolver &Solver,
                             const PlacementOptions &Options =
                                 PlacementOptions(),
                             const logic::Term *ProvidedInvariant = nullptr);

} // namespace core
} // namespace expresso

#endif // EXPRESSO_CORE_SIGNALPLACEMENT_H
