//===- frontend/Lexer.h - Monitor-language lexer ----------------*- C++ -*-===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written lexer for the monitor DSL. Supports `//` line comments and
/// `/* */` block comments, Java-style.
///
//===----------------------------------------------------------------------===//

#ifndef EXPRESSO_FRONTEND_LEXER_H
#define EXPRESSO_FRONTEND_LEXER_H

#include "support/Diagnostics.h"

#include <cstdint>
#include <string>
#include <vector>

namespace expresso {
namespace frontend {

/// Token kinds of the monitor language.
enum class TokenKind {
  // Literals / identifiers
  Identifier,
  IntLiteral,
  // Keywords
  KwMonitor,
  KwConst,
  KwInt,
  KwBool,
  KwVoid,
  KwAtomic,
  KwInit,
  KwRequires,
  KwWaituntil,
  KwIf,
  KwElse,
  KwWhile,
  KwTrue,
  KwFalse,
  KwSkip,
  // Punctuation
  LBrace,
  RBrace,
  LParen,
  RParen,
  LBracket,
  RBracket,
  Semi,
  Comma,
  Assign,  // =
  Plus,
  Minus,
  Star,
  Percent,
  Bang,    // !
  EqEq,
  BangEq,
  Lt,
  Le,
  Gt,
  Ge,
  AmpAmp,
  PipePipe,
  PlusPlus,   // ++ sugar: v++ => v = v + 1
  MinusMinus, // -- sugar
  EndOfFile,
  Error,
};

const char *tokenKindName(TokenKind K);

/// A lexed token.
struct Token {
  TokenKind Kind = TokenKind::Error;
  std::string Text;
  int64_t IntValue = 0;
  SourceLoc Loc;

  bool is(TokenKind K) const { return Kind == K; }
};

/// Tokenizes \p Source; lexical errors are reported to \p Diags and yield
/// Error tokens. Always ends with an EndOfFile token.
std::vector<Token> lex(const std::string &Source, DiagnosticEngine &Diags);

} // namespace frontend
} // namespace expresso

#endif // EXPRESSO_FRONTEND_LEXER_H
