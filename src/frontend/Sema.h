//===- frontend/Sema.h - Semantic analysis and lowering ---------*- C++ -*-===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Semantic analysis for monitors: name resolution, type checking, the
/// linearity restrictions of the logic fragment, and lowering of expressions
/// to logic terms.
///
/// Sema also computes the two structures the rest of the pipeline is built
/// on:
///
///  * the CCR table: every waituntil with its lowered guard and owning
///    method (CCRs(M) in the paper);
///  * predicate classes: guards canonicalized by positionally renaming
///    thread-local variables, so that `x < y` in two different threads is
///    ONE predicate with per-thread local snapshots (Example 4.2). Each
///    class later receives one condition variable (§6).
///
/// Naming scheme for lowered variables: field `f` stays `f`; parameter or
/// local `x` of method `m` becomes `m::x` (the paper assumes globally unique
/// local names; qualification enforces that).
///
//===----------------------------------------------------------------------===//

#ifndef EXPRESSO_FRONTEND_SEMA_H
#define EXPRESSO_FRONTEND_SEMA_H

#include "frontend/Ast.h"
#include "logic/Term.h"

#include <map>
#include <memory>
#include <vector>

namespace expresso {
namespace frontend {

/// A canonicalized guard predicate shared by one or more CCRs.
struct PredicateClass {
  /// Guard with thread-local variables replaced by positional placeholders
  /// `$p0, $p1, ...`. Identity of this term IS identity of the class.
  const logic::Term *Canonical = nullptr;
  /// The placeholder variables, in order.
  std::vector<const logic::Term *> Placeholders;
  /// Dense class index (stable across runs).
  unsigned Index = 0;
  /// True when the class has no thread-local variables.
  bool isGround() const { return Placeholders.empty(); }
};

/// Per-CCR semantic information.
struct CcrInfo {
  const WaitUntil *W = nullptr;
  const Method *Parent = nullptr;
  /// Lowered guard over field vars and qualified local vars.
  const logic::Term *Guard = nullptr;
  /// Predicate class of the guard.
  const PredicateClass *Class = nullptr;
  /// Actual local terms aligned with Class->Placeholders.
  std::vector<const logic::Term *> ClassArgs;
};

/// The product of semantic analysis. Owns nothing from the AST; owns its
/// predicate classes.
class SemaInfo {
public:
  const Monitor *M = nullptr;
  logic::TermContext *C = nullptr;

  std::vector<CcrInfo> Ccrs;
  std::vector<std::unique_ptr<PredicateClass>> Classes;

  /// Field name -> lowered variable.
  std::map<std::string, const logic::Term *> FieldVars;
  /// Qualified local name (m::x) -> lowered variable.
  std::map<std::string, const logic::Term *> LocalVars;

  /// The lowered variable for field \p Name (must exist).
  const logic::Term *fieldVar(const std::string &Name) const;

  /// The lowered variable for local/param \p Name of \p InMethod, or null.
  const logic::Term *localVar(const Method &InMethod,
                              const std::string &Name) const;

  /// Lowers an expression in the scope of \p InMethod (null for init-block
  /// scope). Sema has already validated the expression, so this cannot fail.
  const logic::Term *lowerExpr(const Expr *E, const Method *InMethod) const;

  /// All shared (field) variables, in declaration order.
  std::vector<const logic::Term *> sharedVars() const;

  /// True if \p V is a lowered thread-local (parameter / method local).
  bool isLocalVar(const logic::Term *V) const;

  /// CcrInfo for a given waituntil.
  const CcrInfo &info(const WaitUntil *W) const;

  /// Distinct predicate classes in stable order.
  std::vector<const PredicateClass *> classes() const;
};

/// Runs semantic analysis. Returns nullptr and fills \p Diags on error.
std::unique_ptr<SemaInfo> analyze(const Monitor &M, logic::TermContext &C,
                                  DiagnosticEngine &Diags);

} // namespace frontend
} // namespace expresso

#endif // EXPRESSO_FRONTEND_SEMA_H
