//===- frontend/Parser.cpp - Monitor-language parser ---------------------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"

#include "frontend/Lexer.h"

#include <optional>

using namespace expresso;
using namespace expresso::frontend;

namespace {

class Parser {
public:
  Parser(std::vector<Token> Tokens, DiagnosticEngine &Diags)
      : Tokens(std::move(Tokens)), Diags(Diags) {}

  std::unique_ptr<Monitor> parse() {
    auto M = std::make_unique<Monitor>();
    Mon = M.get();
    if (!expect(TokenKind::KwMonitor))
      return nullptr;
    if (!cur().is(TokenKind::Identifier)) {
      error("expected monitor name");
      return nullptr;
    }
    M->Name = cur().Text;
    next();
    if (!expect(TokenKind::LBrace))
      return nullptr;
    while (!cur().is(TokenKind::RBrace) && !cur().is(TokenKind::EndOfFile)) {
      if (!parseMember())
        return nullptr;
    }
    if (!expect(TokenKind::RBrace))
      return nullptr;
    if (Diags.hasErrors())
      return nullptr;
    return M;
  }

private:
  const Token &cur() const { return Tokens[Pos]; }
  const Token &peek(size_t Ahead = 1) const {
    size_t P = Pos + Ahead;
    return P < Tokens.size() ? Tokens[P] : Tokens.back();
  }
  void next() {
    if (Pos + 1 < Tokens.size())
      ++Pos;
  }
  void error(const std::string &Msg) { Diags.error(cur().Loc, Msg); }
  bool expect(TokenKind K) {
    if (cur().is(K)) {
      next();
      return true;
    }
    error(std::string("expected ") + tokenKindName(K) + " but found " +
          tokenKindName(cur().Kind));
    return false;
  }
  bool accept(TokenKind K) {
    if (!cur().is(K))
      return false;
    next();
    return true;
  }

  std::optional<TypeKind> parseType() {
    TypeKind Base;
    if (accept(TokenKind::KwInt)) {
      Base = TypeKind::Int;
    } else if (accept(TokenKind::KwBool)) {
      Base = TypeKind::Bool;
    } else {
      error("expected a type ('int' or 'bool')");
      return std::nullopt;
    }
    if (accept(TokenKind::LBracket)) {
      if (!expect(TokenKind::RBracket))
        return std::nullopt;
      return Base == TypeKind::Int ? TypeKind::IntArray : TypeKind::BoolArray;
    }
    return Base;
  }

  bool parseMember() {
    SourceLoc Loc = cur().Loc;
    // Configuration contract.
    if (accept(TokenKind::KwRequires)) {
      const Expr *E = parseExpr();
      if (!E || !expect(TokenKind::Semi))
        return false;
      Mon->Requires.push_back(E);
      return true;
    }
    // Constructor.
    if (accept(TokenKind::KwInit)) {
      const Stmt *Body = parseBlock();
      if (!Body)
        return false;
      if (Mon->InitBody) {
        Diags.error(Loc, "duplicate init block");
        return false;
      }
      Mon->InitBody = Body;
      return true;
    }
    // Method: [atomic] void name(...) {...}
    if (cur().is(TokenKind::KwAtomic) || cur().is(TokenKind::KwVoid))
      return parseMethod();
    // Field: [const] type name [= lit];
    return parseField();
  }

  bool parseField() {
    Field F;
    F.Loc = cur().Loc;
    F.IsConst = accept(TokenKind::KwConst);
    auto Ty = parseType();
    if (!Ty)
      return false;
    F.Type = *Ty;
    if (!cur().is(TokenKind::Identifier)) {
      error("expected field name");
      return false;
    }
    F.Name = cur().Text;
    next();
    if (accept(TokenKind::Assign)) {
      const Expr *Init = parseExpr();
      if (!Init)
        return false;
      F.Init = Init;
    }
    if (!expect(TokenKind::Semi))
      return false;
    Mon->Fields.push_back(std::move(F));
    return true;
  }

  bool parseMethod() {
    Method M;
    M.Loc = cur().Loc;
    accept(TokenKind::KwAtomic); // the keyword is implied in this language
    if (!expect(TokenKind::KwVoid))
      return false;
    if (!cur().is(TokenKind::Identifier)) {
      error("expected method name");
      return false;
    }
    M.Name = cur().Text;
    next();
    if (!expect(TokenKind::LParen))
      return false;
    if (!cur().is(TokenKind::RParen)) {
      do {
        auto Ty = parseType();
        if (!Ty)
          return false;
        if (*Ty != TypeKind::Int && *Ty != TypeKind::Bool) {
          error("array parameters are not supported");
          return false;
        }
        if (!cur().is(TokenKind::Identifier)) {
          error("expected parameter name");
          return false;
        }
        M.Params.push_back({cur().Text, *Ty});
        next();
      } while (accept(TokenKind::Comma));
    }
    if (!expect(TokenKind::RParen))
      return false;
    if (!expect(TokenKind::LBrace))
      return false;
    while (!cur().is(TokenKind::RBrace) && !cur().is(TokenKind::EndOfFile)) {
      WaitUntil W;
      W.Loc = cur().Loc;
      W.Id = NextCcrId++;
      if (accept(TokenKind::KwWaituntil)) {
        if (!expect(TokenKind::LParen))
          return false;
        W.Guard = parseExpr();
        if (!W.Guard)
          return false;
        if (!expect(TokenKind::RParen))
          return false;
        if (cur().is(TokenKind::LBrace)) {
          W.Body = parseBlock();
        } else if (accept(TokenKind::Semi)) {
          W.Body = Mon->make<SkipStmt>(W.Loc);
        } else {
          W.Body = parseStmt();
        }
        if (!W.Body)
          return false;
      } else {
        // Bare statement: waituntil(true){ s }.
        W.Guard = Mon->make<BoolLit>(true, W.Loc);
        W.Body = parseStmt();
        if (!W.Body)
          return false;
      }
      M.Body.push_back(std::move(W));
    }
    if (!expect(TokenKind::RBrace))
      return false;
    Mon->Methods.push_back(std::move(M));
    return true;
  }

  const Stmt *parseBlock() {
    SourceLoc Loc = cur().Loc;
    if (!expect(TokenKind::LBrace))
      return nullptr;
    std::vector<const Stmt *> Stmts;
    while (!cur().is(TokenKind::RBrace) && !cur().is(TokenKind::EndOfFile)) {
      const Stmt *S = parseStmt();
      if (!S)
        return nullptr;
      Stmts.push_back(S);
    }
    if (!expect(TokenKind::RBrace))
      return nullptr;
    return Mon->make<SeqStmt>(std::move(Stmts), Loc);
  }

  const Stmt *parseStmt() {
    SourceLoc Loc = cur().Loc;
    switch (cur().Kind) {
    case TokenKind::LBrace:
      return parseBlock();
    case TokenKind::Semi:
      next();
      return Mon->make<SkipStmt>(Loc);
    case TokenKind::KwSkip: {
      next();
      if (!expect(TokenKind::Semi))
        return nullptr;
      return Mon->make<SkipStmt>(Loc);
    }
    case TokenKind::KwIf: {
      next();
      if (!expect(TokenKind::LParen))
        return nullptr;
      const Expr *Cond = parseExpr();
      if (!Cond || !expect(TokenKind::RParen))
        return nullptr;
      const Stmt *Then = parseStmt();
      if (!Then)
        return nullptr;
      const Stmt *Else = nullptr;
      if (accept(TokenKind::KwElse)) {
        Else = parseStmt();
        if (!Else)
          return nullptr;
      } else {
        Else = Mon->make<SkipStmt>(Loc);
      }
      return Mon->make<IfStmt>(Cond, Then, Else, Loc);
    }
    case TokenKind::KwWhile: {
      next();
      if (!expect(TokenKind::LParen))
        return nullptr;
      const Expr *Cond = parseExpr();
      if (!Cond || !expect(TokenKind::RParen))
        return nullptr;
      const Stmt *Body = parseStmt();
      if (!Body)
        return nullptr;
      return Mon->make<WhileStmt>(Cond, Body, Loc);
    }
    case TokenKind::KwWaituntil:
      error("nested waituntil statements are not supported (see paper §9)");
      return nullptr;
    case TokenKind::KwInt:
    case TokenKind::KwBool: {
      auto Ty = parseType();
      if (!Ty)
        return nullptr;
      if (*Ty != TypeKind::Int && *Ty != TypeKind::Bool) {
        error("array-typed locals are not supported");
        return nullptr;
      }
      if (!cur().is(TokenKind::Identifier)) {
        error("expected local variable name");
        return nullptr;
      }
      std::string Name = cur().Text;
      next();
      if (!expect(TokenKind::Assign))
        return nullptr;
      const Expr *Init = parseExpr();
      if (!Init || !expect(TokenKind::Semi))
        return nullptr;
      return Mon->make<LocalDeclStmt>(*Ty, std::move(Name), Init, Loc);
    }
    case TokenKind::Identifier: {
      std::string Name = cur().Text;
      next();
      if (accept(TokenKind::LBracket)) {
        const Expr *Index = parseExpr();
        if (!Index || !expect(TokenKind::RBracket))
          return nullptr;
        if (!expect(TokenKind::Assign))
          return nullptr;
        const Expr *Value = parseExpr();
        if (!Value || !expect(TokenKind::Semi))
          return nullptr;
        return Mon->make<StoreStmt>(std::move(Name), Index, Value, Loc);
      }
      if (accept(TokenKind::PlusPlus)) {
        if (!expect(TokenKind::Semi))
          return nullptr;
        const Expr *Inc = Mon->make<Binary>(
            BinaryOp::Add, Mon->make<VarRef>(Name, Loc),
            Mon->make<IntLit>(1, Loc), Loc);
        return Mon->make<AssignStmt>(std::move(Name), Inc, Loc);
      }
      if (accept(TokenKind::MinusMinus)) {
        if (!expect(TokenKind::Semi))
          return nullptr;
        const Expr *Dec = Mon->make<Binary>(
            BinaryOp::Sub, Mon->make<VarRef>(Name, Loc),
            Mon->make<IntLit>(1, Loc), Loc);
        return Mon->make<AssignStmt>(std::move(Name), Dec, Loc);
      }
      if (!expect(TokenKind::Assign))
        return nullptr;
      const Expr *Value = parseExpr();
      if (!Value || !expect(TokenKind::Semi))
        return nullptr;
      return Mon->make<AssignStmt>(std::move(Name), Value, Loc);
    }
    default:
      error(std::string("expected a statement but found ") +
            tokenKindName(cur().Kind));
      return nullptr;
    }
  }

  //===--------------------------------------------------------------------===
  // Expressions (precedence climbing)
  //===--------------------------------------------------------------------===

  const Expr *parseExpr() { return parseOr(); }

  const Expr *parseOr() {
    const Expr *L = parseAnd();
    while (L && cur().is(TokenKind::PipePipe)) {
      SourceLoc Loc = cur().Loc;
      next();
      const Expr *R = parseAnd();
      if (!R)
        return nullptr;
      L = Mon->make<Binary>(BinaryOp::Or, L, R, Loc);
    }
    return L;
  }

  const Expr *parseAnd() {
    const Expr *L = parseEquality();
    while (L && cur().is(TokenKind::AmpAmp)) {
      SourceLoc Loc = cur().Loc;
      next();
      const Expr *R = parseEquality();
      if (!R)
        return nullptr;
      L = Mon->make<Binary>(BinaryOp::And, L, R, Loc);
    }
    return L;
  }

  const Expr *parseEquality() {
    const Expr *L = parseRelational();
    while (L && (cur().is(TokenKind::EqEq) || cur().is(TokenKind::BangEq))) {
      BinaryOp Op =
          cur().is(TokenKind::EqEq) ? BinaryOp::Eq : BinaryOp::Ne;
      SourceLoc Loc = cur().Loc;
      next();
      const Expr *R = parseRelational();
      if (!R)
        return nullptr;
      L = Mon->make<Binary>(Op, L, R, Loc);
    }
    return L;
  }

  const Expr *parseRelational() {
    const Expr *L = parseAdditive();
    for (;;) {
      BinaryOp Op;
      if (cur().is(TokenKind::Lt)) {
        Op = BinaryOp::Lt;
      } else if (cur().is(TokenKind::Le)) {
        Op = BinaryOp::Le;
      } else if (cur().is(TokenKind::Gt)) {
        Op = BinaryOp::Gt;
      } else if (cur().is(TokenKind::Ge)) {
        Op = BinaryOp::Ge;
      } else {
        return L;
      }
      if (!L)
        return nullptr;
      SourceLoc Loc = cur().Loc;
      next();
      const Expr *R = parseAdditive();
      if (!R)
        return nullptr;
      L = Mon->make<Binary>(Op, L, R, Loc);
    }
  }

  const Expr *parseAdditive() {
    const Expr *L = parseMultiplicative();
    while (L && (cur().is(TokenKind::Plus) || cur().is(TokenKind::Minus))) {
      BinaryOp Op = cur().is(TokenKind::Plus) ? BinaryOp::Add : BinaryOp::Sub;
      SourceLoc Loc = cur().Loc;
      next();
      const Expr *R = parseMultiplicative();
      if (!R)
        return nullptr;
      L = Mon->make<Binary>(Op, L, R, Loc);
    }
    return L;
  }

  const Expr *parseMultiplicative() {
    const Expr *L = parseUnary();
    while (L && (cur().is(TokenKind::Star) || cur().is(TokenKind::Percent))) {
      BinaryOp Op = cur().is(TokenKind::Star) ? BinaryOp::Mul : BinaryOp::Mod;
      SourceLoc Loc = cur().Loc;
      next();
      const Expr *R = parseUnary();
      if (!R)
        return nullptr;
      L = Mon->make<Binary>(Op, L, R, Loc);
    }
    return L;
  }

  const Expr *parseUnary() {
    SourceLoc Loc = cur().Loc;
    if (accept(TokenKind::Bang)) {
      const Expr *E = parseUnary();
      if (!E)
        return nullptr;
      return Mon->make<Unary>(UnaryOp::Not, E, Loc);
    }
    if (accept(TokenKind::Minus)) {
      const Expr *E = parseUnary();
      if (!E)
        return nullptr;
      return Mon->make<Unary>(UnaryOp::Neg, E, Loc);
    }
    return parsePrimary();
  }

  const Expr *parsePrimary() {
    SourceLoc Loc = cur().Loc;
    switch (cur().Kind) {
    case TokenKind::IntLiteral: {
      int64_t V = cur().IntValue;
      next();
      return Mon->make<IntLit>(V, Loc);
    }
    case TokenKind::KwTrue:
      next();
      return Mon->make<BoolLit>(true, Loc);
    case TokenKind::KwFalse:
      next();
      return Mon->make<BoolLit>(false, Loc);
    case TokenKind::LParen: {
      next();
      const Expr *E = parseExpr();
      if (!E || !expect(TokenKind::RParen))
        return nullptr;
      return E;
    }
    case TokenKind::Identifier: {
      std::string Name = cur().Text;
      next();
      if (accept(TokenKind::LBracket)) {
        const Expr *Index = parseExpr();
        if (!Index || !expect(TokenKind::RBracket))
          return nullptr;
        return Mon->make<ArrayRef>(std::move(Name), Index, Loc);
      }
      return Mon->make<VarRef>(std::move(Name), Loc);
    }
    default:
      error(std::string("expected an expression but found ") +
            tokenKindName(cur().Kind));
      return nullptr;
    }
  }

  std::vector<Token> Tokens;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  Monitor *Mon = nullptr;
  unsigned NextCcrId = 0;
};

} // namespace

std::unique_ptr<Monitor> frontend::parseMonitor(const std::string &Source,
                                                DiagnosticEngine &Diags) {
  std::vector<Token> Tokens = lex(Source, Diags);
  if (Diags.hasErrors())
    return nullptr;
  return Parser(std::move(Tokens), Diags).parse();
}
