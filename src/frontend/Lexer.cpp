//===- frontend/Lexer.cpp - Monitor-language lexer -----------------------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//

#include "frontend/Lexer.h"

#include <cctype>
#include <map>

using namespace expresso;
using namespace expresso::frontend;

const char *frontend::tokenKindName(TokenKind K) {
  switch (K) {
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::IntLiteral:
    return "integer literal";
  case TokenKind::KwMonitor:
    return "'monitor'";
  case TokenKind::KwConst:
    return "'const'";
  case TokenKind::KwInt:
    return "'int'";
  case TokenKind::KwBool:
    return "'bool'";
  case TokenKind::KwVoid:
    return "'void'";
  case TokenKind::KwAtomic:
    return "'atomic'";
  case TokenKind::KwInit:
    return "'init'";
  case TokenKind::KwRequires:
    return "'requires'";
  case TokenKind::KwWaituntil:
    return "'waituntil'";
  case TokenKind::KwIf:
    return "'if'";
  case TokenKind::KwElse:
    return "'else'";
  case TokenKind::KwWhile:
    return "'while'";
  case TokenKind::KwTrue:
    return "'true'";
  case TokenKind::KwFalse:
    return "'false'";
  case TokenKind::KwSkip:
    return "'skip'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBracket:
    return "'['";
  case TokenKind::RBracket:
    return "']'";
  case TokenKind::Semi:
    return "';'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Assign:
    return "'='";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Percent:
    return "'%'";
  case TokenKind::Bang:
    return "'!'";
  case TokenKind::EqEq:
    return "'=='";
  case TokenKind::BangEq:
    return "'!='";
  case TokenKind::Lt:
    return "'<'";
  case TokenKind::Le:
    return "'<='";
  case TokenKind::Gt:
    return "'>'";
  case TokenKind::Ge:
    return "'>='";
  case TokenKind::AmpAmp:
    return "'&&'";
  case TokenKind::PipePipe:
    return "'||'";
  case TokenKind::PlusPlus:
    return "'++'";
  case TokenKind::MinusMinus:
    return "'--'";
  case TokenKind::EndOfFile:
    return "end of file";
  case TokenKind::Error:
    return "invalid token";
  }
  return "?";
}

std::vector<Token> frontend::lex(const std::string &Source,
                                 DiagnosticEngine &Diags) {
  static const std::map<std::string, TokenKind> Keywords = {
      {"monitor", TokenKind::KwMonitor}, {"const", TokenKind::KwConst},
      {"int", TokenKind::KwInt},         {"bool", TokenKind::KwBool},
      {"boolean", TokenKind::KwBool},    {"void", TokenKind::KwVoid},
      {"atomic", TokenKind::KwAtomic},   {"init", TokenKind::KwInit},
      {"requires", TokenKind::KwRequires},
      {"waituntil", TokenKind::KwWaituntil},
      {"if", TokenKind::KwIf},           {"else", TokenKind::KwElse},
      {"while", TokenKind::KwWhile},     {"true", TokenKind::KwTrue},
      {"false", TokenKind::KwFalse},     {"skip", TokenKind::KwSkip},
  };

  std::vector<Token> Tokens;
  size_t I = 0, N = Source.size();
  unsigned Line = 1, Col = 1;

  auto cur = [&]() -> char { return I < N ? Source[I] : '\0'; };
  auto peek = [&]() -> char { return I + 1 < N ? Source[I + 1] : '\0'; };
  auto advance = [&]() {
    if (cur() == '\n') {
      ++Line;
      Col = 1;
    } else {
      ++Col;
    }
    ++I;
  };
  auto push = [&](TokenKind K, std::string Text, SourceLoc Loc,
                  int64_t Value = 0) {
    Tokens.push_back({K, std::move(Text), Value, Loc});
  };

  while (I < N) {
    char Ch = cur();
    SourceLoc Loc{Line, Col};
    if (std::isspace(static_cast<unsigned char>(Ch))) {
      advance();
      continue;
    }
    // Comments.
    if (Ch == '/' && peek() == '/') {
      while (I < N && cur() != '\n')
        advance();
      continue;
    }
    if (Ch == '/' && peek() == '*') {
      advance();
      advance();
      while (I < N && !(cur() == '*' && peek() == '/'))
        advance();
      if (I < N) {
        advance();
        advance();
      } else {
        Diags.error(Loc, "unterminated block comment");
      }
      continue;
    }
    // Identifiers / keywords.
    if (std::isalpha(static_cast<unsigned char>(Ch)) || Ch == '_') {
      std::string Text;
      while (I < N && (std::isalnum(static_cast<unsigned char>(cur())) ||
                       cur() == '_')) {
        Text += cur();
        advance();
      }
      auto It = Keywords.find(Text);
      push(It != Keywords.end() ? It->second : TokenKind::Identifier, Text,
           Loc);
      continue;
    }
    // Integer literals.
    if (std::isdigit(static_cast<unsigned char>(Ch))) {
      std::string Text;
      while (I < N && std::isdigit(static_cast<unsigned char>(cur()))) {
        Text += cur();
        advance();
      }
      push(TokenKind::IntLiteral, Text, Loc, std::stoll(Text));
      continue;
    }
    // Punctuation.
    auto two = [&](char Second, TokenKind TwoK, TokenKind OneK) {
      if (peek() == Second) {
        std::string Text{Ch, Second};
        advance();
        advance();
        push(TwoK, Text, Loc);
      } else {
        advance();
        push(OneK, std::string(1, Ch), Loc);
      }
    };
    switch (Ch) {
    case '{':
      advance();
      push(TokenKind::LBrace, "{", Loc);
      break;
    case '}':
      advance();
      push(TokenKind::RBrace, "}", Loc);
      break;
    case '(':
      advance();
      push(TokenKind::LParen, "(", Loc);
      break;
    case ')':
      advance();
      push(TokenKind::RParen, ")", Loc);
      break;
    case '[':
      advance();
      push(TokenKind::LBracket, "[", Loc);
      break;
    case ']':
      advance();
      push(TokenKind::RBracket, "]", Loc);
      break;
    case ';':
      advance();
      push(TokenKind::Semi, ";", Loc);
      break;
    case ',':
      advance();
      push(TokenKind::Comma, ",", Loc);
      break;
    case '%':
      advance();
      push(TokenKind::Percent, "%", Loc);
      break;
    case '*':
      advance();
      push(TokenKind::Star, "*", Loc);
      break;
    case '+':
      two('+', TokenKind::PlusPlus, TokenKind::Plus);
      break;
    case '-':
      two('-', TokenKind::MinusMinus, TokenKind::Minus);
      break;
    case '=':
      two('=', TokenKind::EqEq, TokenKind::Assign);
      break;
    case '!':
      two('=', TokenKind::BangEq, TokenKind::Bang);
      break;
    case '<':
      two('=', TokenKind::Le, TokenKind::Lt);
      break;
    case '>':
      two('=', TokenKind::Ge, TokenKind::Gt);
      break;
    case '&':
      if (peek() == '&') {
        advance();
        advance();
        push(TokenKind::AmpAmp, "&&", Loc);
      } else {
        Diags.error(Loc, "expected '&&'");
        advance();
        push(TokenKind::Error, "&", Loc);
      }
      break;
    case '|':
      if (peek() == '|') {
        advance();
        advance();
        push(TokenKind::PipePipe, "||", Loc);
      } else {
        Diags.error(Loc, "expected '||'");
        advance();
        push(TokenKind::Error, "|", Loc);
      }
      break;
    default:
      Diags.error(Loc, std::string("unexpected character '") + Ch + "'");
      advance();
      push(TokenKind::Error, std::string(1, Ch), Loc);
      break;
    }
  }
  Tokens.push_back({TokenKind::EndOfFile, "", 0, SourceLoc{Line, Col}});
  return Tokens;
}
