//===- frontend/Parser.h - Monitor-language parser --------------*- C++ -*-===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for the Figure-3 monitor language. Bare
/// statements at method top level are wrapped into `waituntil(true){s}`
/// exactly as the paper specifies ("a statement s is a special case of a
/// waituntil statement whose corresponding predicate is true").
///
//===----------------------------------------------------------------------===//

#ifndef EXPRESSO_FRONTEND_PARSER_H
#define EXPRESSO_FRONTEND_PARSER_H

#include "frontend/Ast.h"

#include <memory>
#include <string>

namespace expresso {
namespace frontend {

/// Parses \p Source into a Monitor. Returns nullptr (with diagnostics in
/// \p Diags) on syntax errors.
std::unique_ptr<Monitor> parseMonitor(const std::string &Source,
                                      DiagnosticEngine &Diags);

} // namespace frontend
} // namespace expresso

#endif // EXPRESSO_FRONTEND_PARSER_H
