//===- frontend/Sema.cpp - Semantic analysis and lowering ----------------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//

#include "frontend/Sema.h"

#include "logic/TermOps.h"

#include <cassert>
#include <set>

using namespace expresso;
using namespace expresso::frontend;
using logic::Sort;
using logic::Term;

namespace {

Sort sortOf(TypeKind T) {
  switch (T) {
  case TypeKind::Int:
    return Sort::Int;
  case TypeKind::Bool:
    return Sort::Bool;
  case TypeKind::IntArray:
    return Sort::IntArray;
  case TypeKind::BoolArray:
    return Sort::BoolArray;
  }
  return Sort::Int;
}

/// Type checker + lowering validator. Works per method with a local scope.
class Checker {
public:
  Checker(const Monitor &M, SemaInfo &Info, DiagnosticEngine &Diags)
      : M(M), Info(Info), Diags(Diags) {}

  bool run() {
    // Declare fields.
    std::set<std::string> Names;
    for (const Field &F : M.Fields) {
      if (!Names.insert(F.Name).second) {
        Diags.error(F.Loc, "duplicate field '" + F.Name + "'");
        return false;
      }
      Info.FieldVars[F.Name] = Info.C->var(F.Name, sortOf(F.Type));
      if (F.Init) {
        TypeKind InitTy;
        if (!typeOfLiteralInit(F.Init, InitTy))
          return false;
        if (InitTy != F.Type) {
          Diags.error(F.Loc, "initializer type mismatch for field '" +
                                 F.Name + "'");
          return false;
        }
      }
    }
    // Check init block (field scope only).
    if (M.InitBody && !checkStmt(M.InitBody, nullptr, /*InInit=*/true))
      return false;
    // Check requires clauses: boolean, const fields only.
    for (const Expr *R : M.Requires) {
      TypeKind Ty;
      if (!checkExpr(R, nullptr, Ty))
        return false;
      if (Ty != TypeKind::Bool) {
        Diags.error(R->loc(), "requires clause must be boolean");
        return false;
      }
      if (!constFieldsOnly(R)) {
        Diags.error(R->loc(),
                    "requires clauses may reference const fields only");
        return false;
      }
    }
    // Check methods.
    std::set<std::string> MethodNames;
    for (const Method &Me : M.Methods) {
      if (!MethodNames.insert(Me.Name).second) {
        Diags.error(Me.Loc, "duplicate method '" + Me.Name + "'");
        return false;
      }
      Locals.clear();
      for (const Param &P : Me.Params) {
        if (Info.FieldVars.count(P.Name)) {
          Diags.error(Me.Loc, "parameter '" + P.Name + "' shadows a field");
          return false;
        }
        if (!Locals.emplace(P.Name, P.Type).second) {
          Diags.error(Me.Loc, "duplicate parameter '" + P.Name + "'");
          return false;
        }
        Info.LocalVars[Me.Name + "::" + P.Name] =
            Info.C->var(Me.Name + "::" + P.Name, sortOf(P.Type));
      }
      for (const WaitUntil &W : Me.Body) {
        TypeKind GuardTy;
        if (!checkExpr(W.Guard, &Me, GuardTy))
          return false;
        if (GuardTy != TypeKind::Bool) {
          Diags.error(W.Loc, "waituntil guard must be boolean");
          return false;
        }
        if (!checkStmt(W.Body, &Me, /*InInit=*/false))
          return false;
      }
    }
    return true;
  }

private:
  bool typeOfLiteralInit(const Expr *E, TypeKind &Out) {
    if (isa<IntLit>(E)) {
      Out = TypeKind::Int;
      return true;
    }
    if (isa<BoolLit>(E)) {
      Out = TypeKind::Bool;
      return true;
    }
    if (const auto *U = dyn_cast<Unary>(E);
        U && U->op() == UnaryOp::Neg && isa<IntLit>(U->operand())) {
      Out = TypeKind::Int;
      return true;
    }
    Diags.error(E->loc(), "field initializers must be literals");
    return false;
  }

  bool lookup(const std::string &Name, const Method *InMethod, TypeKind &Out,
              bool &IsLocal, bool &IsConst) {
    if (InMethod) {
      auto It = Locals.find(Name);
      if (It != Locals.end()) {
        Out = It->second;
        IsLocal = true;
        IsConst = false;
        return true;
      }
    }
    if (const Field *F = M.findField(Name)) {
      Out = F->Type;
      IsLocal = false;
      IsConst = F->IsConst;
      return true;
    }
    return false;
  }

  bool checkExpr(const Expr *E, const Method *InMethod, TypeKind &Out) {
    switch (E->kind()) {
    case Expr::Kind::IntLit:
      Out = TypeKind::Int;
      return true;
    case Expr::Kind::BoolLit:
      Out = TypeKind::Bool;
      return true;
    case Expr::Kind::VarRef: {
      const auto *V = cast<VarRef>(E);
      bool IsLocal, IsConst;
      if (!lookup(V->name(), InMethod, Out, IsLocal, IsConst)) {
        Diags.error(E->loc(), "unknown variable '" + V->name() + "'");
        return false;
      }
      if (Out == TypeKind::IntArray || Out == TypeKind::BoolArray) {
        Diags.error(E->loc(),
                    "arrays may only be used with an index expression");
        return false;
      }
      return true;
    }
    case Expr::Kind::ArrayRef: {
      const auto *A = cast<ArrayRef>(E);
      bool IsLocal, IsConst;
      TypeKind ArrTy;
      if (!lookup(A->array(), InMethod, ArrTy, IsLocal, IsConst)) {
        Diags.error(E->loc(), "unknown array '" + A->array() + "'");
        return false;
      }
      if (ArrTy != TypeKind::IntArray && ArrTy != TypeKind::BoolArray) {
        Diags.error(E->loc(), "'" + A->array() + "' is not an array");
        return false;
      }
      TypeKind IdxTy;
      if (!checkExpr(A->index(), InMethod, IdxTy))
        return false;
      if (IdxTy != TypeKind::Int) {
        Diags.error(E->loc(), "array index must be an integer");
        return false;
      }
      Out = ArrTy == TypeKind::IntArray ? TypeKind::Int : TypeKind::Bool;
      return true;
    }
    case Expr::Kind::Unary: {
      const auto *U = cast<Unary>(E);
      TypeKind OpTy;
      if (!checkExpr(U->operand(), InMethod, OpTy))
        return false;
      if (U->op() == UnaryOp::Not) {
        if (OpTy != TypeKind::Bool) {
          Diags.error(E->loc(), "'!' requires a boolean operand");
          return false;
        }
        Out = TypeKind::Bool;
        return true;
      }
      if (OpTy != TypeKind::Int) {
        Diags.error(E->loc(), "unary '-' requires an integer operand");
        return false;
      }
      Out = TypeKind::Int;
      return true;
    }
    case Expr::Kind::Binary: {
      const auto *B = cast<Binary>(E);
      TypeKind L, R;
      if (!checkExpr(B->lhs(), InMethod, L) ||
          !checkExpr(B->rhs(), InMethod, R))
        return false;
      switch (B->op()) {
      case BinaryOp::Add:
      case BinaryOp::Sub:
        if (L != TypeKind::Int || R != TypeKind::Int) {
          Diags.error(E->loc(), "arithmetic requires integer operands");
          return false;
        }
        Out = TypeKind::Int;
        return true;
      case BinaryOp::Mul: {
        if (L != TypeKind::Int || R != TypeKind::Int) {
          Diags.error(E->loc(), "arithmetic requires integer operands");
          return false;
        }
        if (!isConstantExpr(B->lhs()) && !isConstantExpr(B->rhs())) {
          Diags.error(E->loc(), "multiplication must have a constant operand "
                                "(linear arithmetic only, see paper §9)");
          return false;
        }
        Out = TypeKind::Int;
        return true;
      }
      case BinaryOp::Mod: {
        if (L != TypeKind::Int || !isa<IntLit>(B->rhs())) {
          Diags.error(E->loc(),
                      "'%' requires an integer literal divisor; only the "
                      "pattern 'e % d == c' is supported");
          return false;
        }
        Out = TypeKind::Int;
        return true;
      }
      case BinaryOp::Eq:
      case BinaryOp::Ne:
        if (L != R) {
          Diags.error(E->loc(), "'==' operands must have the same type");
          return false;
        }
        if (isModExpr(B->lhs()) || isModExpr(B->rhs())) {
          // Pattern e % d == c: the constant side must be a literal.
          const Expr *Other = isModExpr(B->lhs()) ? B->rhs() : B->lhs();
          if (!isa<IntLit>(Other)) {
            Diags.error(E->loc(), "'%' comparisons must be against an "
                                  "integer literal");
            return false;
          }
        }
        Out = TypeKind::Bool;
        return true;
      case BinaryOp::Lt:
      case BinaryOp::Le:
      case BinaryOp::Gt:
      case BinaryOp::Ge:
        if (L != TypeKind::Int || R != TypeKind::Int) {
          Diags.error(E->loc(), "comparison requires integer operands");
          return false;
        }
        if (isModExpr(B->lhs()) || isModExpr(B->rhs())) {
          Diags.error(E->loc(), "'%' may only be used with '==' or '!='");
          return false;
        }
        Out = TypeKind::Bool;
        return true;
      case BinaryOp::And:
      case BinaryOp::Or:
        if (L != TypeKind::Bool || R != TypeKind::Bool) {
          Diags.error(E->loc(), "'&&'/'||' require boolean operands");
          return false;
        }
        Out = TypeKind::Bool;
        return true;
      }
      return false;
    }
    }
    return false;
  }

  static bool isModExpr(const Expr *E) {
    const auto *B = dyn_cast<Binary>(E);
    return B && B->op() == BinaryOp::Mod;
  }

  bool constFieldsOnly(const Expr *E) {
    switch (E->kind()) {
    case Expr::Kind::IntLit:
    case Expr::Kind::BoolLit:
      return true;
    case Expr::Kind::VarRef: {
      const Field *F = M.findField(cast<VarRef>(E)->name());
      return F && F->IsConst;
    }
    case Expr::Kind::ArrayRef:
      return false;
    case Expr::Kind::Unary:
      return constFieldsOnly(cast<Unary>(E)->operand());
    case Expr::Kind::Binary:
      return constFieldsOnly(cast<Binary>(E)->lhs()) &&
             constFieldsOnly(cast<Binary>(E)->rhs());
    }
    return false;
  }

  /// Conservatively: literals and negated literals are constants.
  static bool isConstantExpr(const Expr *E) {
    if (isa<IntLit>(E))
      return true;
    if (const auto *U = dyn_cast<Unary>(E))
      return U->op() == UnaryOp::Neg && isConstantExpr(U->operand());
    return false;
  }

  bool checkStmt(const Stmt *S, const Method *InMethod, bool InInit) {
    switch (S->kind()) {
    case Stmt::Kind::Skip:
      return true;
    case Stmt::Kind::Assign: {
      const auto *A = cast<AssignStmt>(S);
      bool IsLocal, IsConst;
      TypeKind TargetTy;
      if (!lookup(A->target(), InMethod, TargetTy, IsLocal, IsConst)) {
        Diags.error(S->loc(), "unknown variable '" + A->target() + "'");
        return false;
      }
      if (IsConst && !InInit) {
        Diags.error(S->loc(),
                    "const field '" + A->target() + "' assigned outside init");
        return false;
      }
      if (TargetTy == TypeKind::IntArray || TargetTy == TypeKind::BoolArray) {
        Diags.error(S->loc(), "whole-array assignment is not supported");
        return false;
      }
      TypeKind ValTy;
      if (!checkExpr(A->value(), InMethod, ValTy))
        return false;
      if (ValTy != TargetTy) {
        Diags.error(S->loc(), "assignment type mismatch");
        return false;
      }
      return true;
    }
    case Stmt::Kind::Store: {
      const auto *St = cast<StoreStmt>(S);
      bool IsLocal, IsConst;
      TypeKind ArrTy;
      if (!lookup(St->array(), InMethod, ArrTy, IsLocal, IsConst)) {
        Diags.error(S->loc(), "unknown array '" + St->array() + "'");
        return false;
      }
      if (ArrTy != TypeKind::IntArray && ArrTy != TypeKind::BoolArray) {
        Diags.error(S->loc(), "'" + St->array() + "' is not an array");
        return false;
      }
      TypeKind IdxTy, ValTy;
      if (!checkExpr(St->index(), InMethod, IdxTy) ||
          !checkExpr(St->value(), InMethod, ValTy))
        return false;
      if (IdxTy != TypeKind::Int) {
        Diags.error(S->loc(), "array index must be an integer");
        return false;
      }
      TypeKind ElemTy =
          ArrTy == TypeKind::IntArray ? TypeKind::Int : TypeKind::Bool;
      if (ValTy != ElemTy) {
        Diags.error(S->loc(), "stored value type mismatch");
        return false;
      }
      return true;
    }
    case Stmt::Kind::Seq: {
      for (const Stmt *Sub : cast<SeqStmt>(S)->stmts())
        if (!checkStmt(Sub, InMethod, InInit))
          return false;
      return true;
    }
    case Stmt::Kind::If: {
      const auto *I = cast<IfStmt>(S);
      TypeKind CondTy;
      if (!checkExpr(I->cond(), InMethod, CondTy))
        return false;
      if (CondTy != TypeKind::Bool) {
        Diags.error(S->loc(), "if condition must be boolean");
        return false;
      }
      return checkStmt(I->thenStmt(), InMethod, InInit) &&
             checkStmt(I->elseStmt(), InMethod, InInit);
    }
    case Stmt::Kind::While: {
      const auto *W = cast<WhileStmt>(S);
      TypeKind CondTy;
      if (!checkExpr(W->cond(), InMethod, CondTy))
        return false;
      if (CondTy != TypeKind::Bool) {
        Diags.error(S->loc(), "while condition must be boolean");
        return false;
      }
      return checkStmt(W->body(), InMethod, InInit);
    }
    case Stmt::Kind::LocalDecl: {
      const auto *L = cast<LocalDeclStmt>(S);
      if (!InMethod) {
        Diags.error(S->loc(), "local declarations are not allowed in init");
        return false;
      }
      if (Info.FieldVars.count(L->name())) {
        Diags.error(S->loc(), "local '" + L->name() + "' shadows a field");
        return false;
      }
      TypeKind InitTy;
      if (!checkExpr(L->init(), InMethod, InitTy))
        return false;
      if (InitTy != L->type()) {
        Diags.error(S->loc(), "local initializer type mismatch");
        return false;
      }
      if (!Locals.emplace(L->name(), L->type()).second) {
        Diags.error(S->loc(), "duplicate local '" + L->name() + "'");
        return false;
      }
      Info.LocalVars[InMethod->Name + "::" + L->name()] = Info.C->var(
          InMethod->Name + "::" + L->name(), sortOf(L->type()));
      return true;
    }
    }
    return false;
  }

  const Monitor &M;
  SemaInfo &Info;
  DiagnosticEngine &Diags;
  std::map<std::string, TypeKind> Locals;
};

} // namespace

const Term *SemaInfo::fieldVar(const std::string &Name) const {
  auto It = FieldVars.find(Name);
  assert(It != FieldVars.end() && "unknown field");
  return It->second;
}

const Term *SemaInfo::localVar(const Method &InMethod,
                               const std::string &Name) const {
  auto It = LocalVars.find(InMethod.Name + "::" + Name);
  return It == LocalVars.end() ? nullptr : It->second;
}

bool SemaInfo::isLocalVar(const Term *V) const {
  return V->isVar() && V->varName().find("::") != std::string::npos;
}

std::vector<const Term *> SemaInfo::sharedVars() const {
  std::vector<const Term *> Result;
  Result.reserve(M->Fields.size());
  for (const Field &F : M->Fields)
    Result.push_back(fieldVar(F.Name));
  return Result;
}

const CcrInfo &SemaInfo::info(const WaitUntil *W) const {
  for (const CcrInfo &CI : Ccrs)
    if (CI.W == W)
      return CI;
  assert(false && "waituntil not part of this monitor");
  return Ccrs.front();
}

std::vector<const PredicateClass *> SemaInfo::classes() const {
  std::vector<const PredicateClass *> Result;
  Result.reserve(Classes.size());
  for (const auto &P : Classes)
    Result.push_back(P.get());
  return Result;
}

const Term *SemaInfo::lowerExpr(const Expr *E, const Method *InMethod) const {
  logic::TermContext &TC = *C;
  switch (E->kind()) {
  case Expr::Kind::IntLit:
    return TC.intConst(cast<IntLit>(E)->value());
  case Expr::Kind::BoolLit:
    return TC.boolConst(cast<BoolLit>(E)->value());
  case Expr::Kind::VarRef: {
    const std::string &Name = cast<VarRef>(E)->name();
    if (InMethod)
      if (const Term *L = localVar(*InMethod, Name))
        return L;
    return fieldVar(Name);
  }
  case Expr::Kind::ArrayRef: {
    const auto *A = cast<ArrayRef>(E);
    return TC.select(fieldVar(A->array()), lowerExpr(A->index(), InMethod));
  }
  case Expr::Kind::Unary: {
    const auto *U = cast<Unary>(E);
    const Term *Op = lowerExpr(U->operand(), InMethod);
    return U->op() == UnaryOp::Not ? TC.not_(Op) : TC.neg(Op);
  }
  case Expr::Kind::Binary: {
    const auto *B = cast<Binary>(E);
    // Divisibility pattern: (e % d) == c  /  != c.
    if (B->op() == BinaryOp::Eq || B->op() == BinaryOp::Ne) {
      const Expr *ModSide = nullptr;
      const Expr *ConstSide = nullptr;
      if (const auto *LB = dyn_cast<Binary>(B->lhs());
          LB && LB->op() == BinaryOp::Mod) {
        ModSide = B->lhs();
        ConstSide = B->rhs();
      } else if (const auto *RB = dyn_cast<Binary>(B->rhs());
                 RB && RB->op() == BinaryOp::Mod) {
        ModSide = B->rhs();
        ConstSide = B->lhs();
      }
      if (ModSide) {
        const auto *MB = cast<Binary>(ModSide);
        int64_t D = cast<IntLit>(MB->rhs())->value();
        int64_t CVal = cast<IntLit>(ConstSide)->value();
        const Term *Arg = lowerExpr(MB->lhs(), InMethod);
        const Term *Dvd =
            TC.divides(D, TC.sub(Arg, TC.intConst(CVal)));
        return B->op() == BinaryOp::Eq ? Dvd : TC.not_(Dvd);
      }
    }
    const Term *L = lowerExpr(B->lhs(), InMethod);
    const Term *R = lowerExpr(B->rhs(), InMethod);
    switch (B->op()) {
    case BinaryOp::Add:
      return TC.add(L, R);
    case BinaryOp::Sub:
      return TC.sub(L, R);
    case BinaryOp::Mul:
      return TC.mul(L, R);
    case BinaryOp::Mod:
      assert(false && "bare '%' outside a comparison; sema rejects this");
      return nullptr;
    case BinaryOp::Eq:
      return TC.eq(L, R);
    case BinaryOp::Ne:
      return TC.ne(L, R);
    case BinaryOp::Lt:
      return TC.lt(L, R);
    case BinaryOp::Le:
      return TC.le(L, R);
    case BinaryOp::Gt:
      return TC.gt(L, R);
    case BinaryOp::Ge:
      return TC.ge(L, R);
    case BinaryOp::And:
      return TC.and_(L, R);
    case BinaryOp::Or:
      return TC.or_(L, R);
    }
    return nullptr;
  }
  }
  return nullptr;
}

std::unique_ptr<SemaInfo> frontend::analyze(const Monitor &M,
                                            logic::TermContext &C,
                                            DiagnosticEngine &Diags) {
  auto Info = std::make_unique<SemaInfo>();
  Info->M = &M;
  Info->C = &C;

  Checker Check(M, *Info, Diags);
  if (!Check.run())
    return nullptr;

  // Build the CCR table and predicate classes.
  std::map<const Term *, PredicateClass *> ClassOfCanonical;
  for (const Method &Me : M.Methods) {
    for (const WaitUntil &W : Me.Body) {
      CcrInfo CI;
      CI.W = &W;
      CI.Parent = &Me;
      CI.Guard = Info->lowerExpr(W.Guard, &Me);

      // Canonicalize: positional renaming of thread-local variables.
      std::vector<const Term *> LocalsInGuard;
      for (const Term *V : logic::freeVars(CI.Guard))
        if (Info->isLocalVar(V))
          LocalsInGuard.push_back(V);
      logic::Substitution Subst;
      std::vector<const Term *> Placeholders;
      for (size_t I = 0; I < LocalsInGuard.size(); ++I) {
        const Term *P =
            C.var("$p" + std::to_string(I) +
                      (LocalsInGuard[I]->sort() == logic::Sort::Bool ? "b"
                                                                     : ""),
                  LocalsInGuard[I]->sort());
        Subst.emplace(LocalsInGuard[I], P);
        Placeholders.push_back(P);
      }
      const Term *Canonical = logic::substitute(C, CI.Guard, Subst);

      auto It = ClassOfCanonical.find(Canonical);
      if (It == ClassOfCanonical.end()) {
        auto PC = std::make_unique<PredicateClass>();
        PC->Canonical = Canonical;
        PC->Placeholders = Placeholders;
        PC->Index = static_cast<unsigned>(Info->Classes.size());
        It = ClassOfCanonical.emplace(Canonical, PC.get()).first;
        Info->Classes.push_back(std::move(PC));
      }
      CI.Class = It->second;
      CI.ClassArgs = LocalsInGuard;
      Info->Ccrs.push_back(std::move(CI));
    }
  }
  return Info;
}
