//===- frontend/Interp.cpp - Concrete AST interpreter ---------------------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//

#include "frontend/Interp.h"

#include "logic/Linear.h"

#include <cassert>

using namespace expresso;
using namespace expresso::frontend;
using logic::Value;

Value frontend::evalExpr(const Expr *E, const Env &Env) {
  switch (E->kind()) {
  case Expr::Kind::IntLit:
    return Value::ofInt(cast<IntLit>(E)->value());
  case Expr::Kind::BoolLit:
    return Value::ofBool(cast<BoolLit>(E)->value());
  case Expr::Kind::VarRef: {
    const std::string &Name = cast<VarRef>(E)->name();
    if (Env.Locals) {
      auto It = Env.Locals->find(Name);
      if (It != Env.Locals->end())
        return It->second;
    }
    auto It = Env.Shared->find(Name);
    assert(It != Env.Shared->end() && "unbound variable in evaluation");
    return It->second;
  }
  case Expr::Kind::ArrayRef: {
    const auto *A = cast<ArrayRef>(E);
    auto It = Env.Shared->find(A->array());
    assert(It != Env.Shared->end() && "unbound array in evaluation");
    int64_t Idx = evalExpr(A->index(), Env).asInt();
    int64_t Raw = It->second.arrayAt(Idx);
    return It->second.S == logic::Sort::BoolArray ? Value::ofBool(Raw != 0)
                                                  : Value::ofInt(Raw);
  }
  case Expr::Kind::Unary: {
    const auto *U = cast<Unary>(E);
    Value V = evalExpr(U->operand(), Env);
    return U->op() == UnaryOp::Not ? Value::ofBool(!V.asBool())
                                   : Value::ofInt(-V.asInt());
  }
  case Expr::Kind::Binary: {
    const auto *B = cast<Binary>(E);
    switch (B->op()) {
    case BinaryOp::And: {
      // Short-circuit.
      if (!evalExpr(B->lhs(), Env).asBool())
        return Value::ofBool(false);
      return evalExpr(B->rhs(), Env);
    }
    case BinaryOp::Or: {
      if (evalExpr(B->lhs(), Env).asBool())
        return Value::ofBool(true);
      return evalExpr(B->rhs(), Env);
    }
    default:
      break;
    }
    Value L = evalExpr(B->lhs(), Env);
    Value R = evalExpr(B->rhs(), Env);
    switch (B->op()) {
    case BinaryOp::Add:
      return Value::ofInt(L.asInt() + R.asInt());
    case BinaryOp::Sub:
      return Value::ofInt(L.asInt() - R.asInt());
    case BinaryOp::Mul:
      return Value::ofInt(L.asInt() * R.asInt());
    case BinaryOp::Mod:
      return Value::ofInt(logic::mathMod(L.asInt(), R.asInt()));
    case BinaryOp::Eq:
      return Value::ofBool(L.I == R.I);
    case BinaryOp::Ne:
      return Value::ofBool(L.I != R.I);
    case BinaryOp::Lt:
      return Value::ofBool(L.asInt() < R.asInt());
    case BinaryOp::Le:
      return Value::ofBool(L.asInt() <= R.asInt());
    case BinaryOp::Gt:
      return Value::ofBool(L.asInt() > R.asInt());
    case BinaryOp::Ge:
      return Value::ofBool(L.asInt() >= R.asInt());
    case BinaryOp::And:
    case BinaryOp::Or:
      break; // handled above
    }
    assert(false && "unhandled binary operator");
    return Value::ofInt(0);
  }
  }
  assert(false && "unhandled expression kind");
  return Value::ofInt(0);
}

void frontend::execStmt(const Stmt *S, Env &Env) {
  switch (S->kind()) {
  case Stmt::Kind::Skip:
    return;
  case Stmt::Kind::Assign: {
    const auto *A = cast<AssignStmt>(S);
    Value V = evalExpr(A->value(), Env);
    if (Env.Locals) {
      auto It = Env.Locals->find(A->target());
      if (It != Env.Locals->end()) {
        It->second = V;
        return;
      }
    }
    (*Env.Shared)[A->target()] = V;
    return;
  }
  case Stmt::Kind::Store: {
    const auto *St = cast<StoreStmt>(S);
    int64_t Idx = evalExpr(St->index(), Env).asInt();
    Value V = evalExpr(St->value(), Env);
    auto It = Env.Shared->find(St->array());
    assert(It != Env.Shared->end() && "unbound array in store");
    It->second.A[Idx] = V.I;
    return;
  }
  case Stmt::Kind::Seq: {
    for (const Stmt *Sub : cast<SeqStmt>(S)->stmts())
      execStmt(Sub, Env);
    return;
  }
  case Stmt::Kind::If: {
    const auto *I = cast<IfStmt>(S);
    if (evalExpr(I->cond(), Env).asBool())
      execStmt(I->thenStmt(), Env);
    else
      execStmt(I->elseStmt(), Env);
    return;
  }
  case Stmt::Kind::While: {
    const auto *W = cast<WhileStmt>(S);
    while (evalExpr(W->cond(), Env).asBool())
      execStmt(W->body(), Env);
    return;
  }
  case Stmt::Kind::LocalDecl: {
    const auto *L = cast<LocalDeclStmt>(S);
    assert(Env.Locals && "local declaration outside a method");
    (*Env.Locals)[L->name()] = evalExpr(L->init(), Env);
    return;
  }
  }
}

logic::Assignment frontend::initialState(const Monitor &M,
                                         const logic::Assignment &Overrides) {
  logic::Assignment State;
  for (const Field &F : M.Fields) {
    switch (F.Type) {
    case TypeKind::Int:
      State[F.Name] = Value::ofInt(0);
      break;
    case TypeKind::Bool:
      State[F.Name] = Value::ofBool(false);
      break;
    case TypeKind::IntArray:
      State[F.Name] = Value::ofArray(logic::Sort::IntArray, {}, 0);
      break;
    case TypeKind::BoolArray:
      State[F.Name] = Value::ofArray(logic::Sort::BoolArray, {}, 0);
      break;
    }
    if (F.Init) {
      Env E{&State, nullptr};
      State[F.Name] = evalExpr(F.Init, E);
    }
  }
  for (const auto &[Name, V] : Overrides)
    State[Name] = V;
  if (M.InitBody) {
    Env E{&State, nullptr};
    execStmt(M.InitBody, E);
  }
  return State;
}
