//===- frontend/Interp.h - Concrete AST interpreter -------------*- C++ -*-===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Concrete big-step execution of monitor statements: the ⟨s, t, σ⟩ ⇓ σ'
/// judgement of Section 3.2. Used by the trace semantics, the runtime
/// engines (guard evaluation and CCR bodies), and differential tests that
/// validate weakest preconditions against real execution.
///
//===----------------------------------------------------------------------===//

#ifndef EXPRESSO_FRONTEND_INTERP_H
#define EXPRESSO_FRONTEND_INTERP_H

#include "frontend/Ast.h"
#include "logic/TermOps.h"

namespace expresso {
namespace frontend {

/// An execution environment: shared monitor state (fields, by name) plus the
/// executing thread's locals (params and method locals, by unqualified
/// name). Lookup prefers locals, matching lexical scoping.
struct Env {
  logic::Assignment *Shared = nullptr;
  logic::Assignment *Locals = nullptr;
};

/// Evaluates an expression; every referenced variable must be bound.
logic::Value evalExpr(const Expr *E, const Env &E2);

/// Executes a statement, mutating the environment. While loops are executed
/// concretely (callers ensure termination; the analysis side never runs
/// this).
void execStmt(const Stmt *S, Env &E);

/// Builds the initial shared state of a monitor: declared field initializers
/// (default 0 / false / empty array), then \p Overrides (used to set
/// `const` configuration fields such as buffer capacities), then the init
/// block.
logic::Assignment initialState(const Monitor &M,
                               const logic::Assignment &Overrides = {});

} // namespace frontend
} // namespace expresso

#endif // EXPRESSO_FRONTEND_INTERP_H
