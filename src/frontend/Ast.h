//===- frontend/Ast.h - Monitor-language AST --------------------*- C++ -*-===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract syntax for the implicit-signal monitor language of Figure 3:
///
///   Monitor   M ::= monitor M { (fld | init | m)* }
///   Field   fld ::= [const] ty f [= lit] ;
///   Method    m ::= atomic void m(params) { w* }
///   WUntil    w ::= waituntil (p) { s }        (bare s == waituntil(true){s})
///   Statement s ::= skip | s1; s2 | v = e | a[i] = e
///                 | if (p) s1 [else s2] | while (p) s | ty v = e
///
/// Nodes use LLVM-style `classof` RTTI (support/Casting.h). A Monitor owns
/// every node of its tree through an internal arena.
///
//===----------------------------------------------------------------------===//

#ifndef EXPRESSO_FRONTEND_AST_H
#define EXPRESSO_FRONTEND_AST_H

#include "support/Casting.h"
#include "support/Diagnostics.h"

#include <memory>
#include <string>
#include <vector>

namespace expresso {
namespace frontend {

/// Surface types of the monitor language.
enum class TypeKind { Int, Bool, IntArray, BoolArray };

const char *typeName(TypeKind T);

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

/// Base class of all expressions.
class Expr {
public:
  enum class Kind {
    IntLit,
    BoolLit,
    VarRef,
    ArrayRef,
    Unary,
    Binary,
  };

  Kind kind() const { return TheKind; }
  SourceLoc loc() const { return Loc; }
  virtual ~Expr() = default;

protected:
  Expr(Kind K, SourceLoc Loc) : TheKind(K), Loc(Loc) {}

private:
  Kind TheKind;
  SourceLoc Loc;
};

/// Integer literal.
class IntLit : public Expr {
public:
  IntLit(int64_t Value, SourceLoc Loc) : Expr(Kind::IntLit, Loc), Value(Value) {}
  int64_t value() const { return Value; }
  static bool classof(const Expr *E) { return E->kind() == Kind::IntLit; }

private:
  int64_t Value;
};

/// `true` / `false`.
class BoolLit : public Expr {
public:
  BoolLit(bool Value, SourceLoc Loc) : Expr(Kind::BoolLit, Loc), Value(Value) {}
  bool value() const { return Value; }
  static bool classof(const Expr *E) { return E->kind() == Kind::BoolLit; }

private:
  bool Value;
};

/// Reference to a field, parameter, or local.
class VarRef : public Expr {
public:
  VarRef(std::string Name, SourceLoc Loc)
      : Expr(Kind::VarRef, Loc), Name(std::move(Name)) {}
  const std::string &name() const { return Name; }
  static bool classof(const Expr *E) { return E->kind() == Kind::VarRef; }

private:
  std::string Name;
};

/// Array element read `a[i]`.
class ArrayRef : public Expr {
public:
  ArrayRef(std::string Array, const Expr *Index, SourceLoc Loc)
      : Expr(Kind::ArrayRef, Loc), Array(std::move(Array)), Index(Index) {}
  const std::string &array() const { return Array; }
  const Expr *index() const { return Index; }
  static bool classof(const Expr *E) { return E->kind() == Kind::ArrayRef; }

private:
  std::string Array;
  const Expr *Index;
};

/// Unary operators.
enum class UnaryOp { Not, Neg };

class Unary : public Expr {
public:
  Unary(UnaryOp Op, const Expr *Operand, SourceLoc Loc)
      : Expr(Kind::Unary, Loc), Op(Op), Operand(Operand) {}
  UnaryOp op() const { return Op; }
  const Expr *operand() const { return Operand; }
  static bool classof(const Expr *E) { return E->kind() == Kind::Unary; }

private:
  UnaryOp Op;
  const Expr *Operand;
};

/// Binary operators.
enum class BinaryOp {
  Add,
  Sub,
  Mul,
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  And,
  Or,
  Mod, ///< only with a constant divisor; lowers to divisibility reasoning
};

const char *binaryOpSpelling(BinaryOp Op);

class Binary : public Expr {
public:
  Binary(BinaryOp Op, const Expr *Lhs, const Expr *Rhs, SourceLoc Loc)
      : Expr(Kind::Binary, Loc), Op(Op), Lhs(Lhs), Rhs(Rhs) {}
  BinaryOp op() const { return Op; }
  const Expr *lhs() const { return Lhs; }
  const Expr *rhs() const { return Rhs; }
  static bool classof(const Expr *E) { return E->kind() == Kind::Binary; }

private:
  BinaryOp Op;
  const Expr *Lhs;
  const Expr *Rhs;
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

/// Base class of all statements.
class Stmt {
public:
  enum class Kind {
    Skip,
    Assign,
    Store,
    Seq,
    If,
    While,
    LocalDecl,
  };

  Kind kind() const { return TheKind; }
  SourceLoc loc() const { return Loc; }
  virtual ~Stmt() = default;

protected:
  Stmt(Kind K, SourceLoc Loc) : TheKind(K), Loc(Loc) {}

private:
  Kind TheKind;
  SourceLoc Loc;
};

/// `skip;` (empty statement).
class SkipStmt : public Stmt {
public:
  explicit SkipStmt(SourceLoc Loc) : Stmt(Kind::Skip, Loc) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::Skip; }
};

/// `v = e;`
class AssignStmt : public Stmt {
public:
  AssignStmt(std::string Target, const Expr *Value, SourceLoc Loc)
      : Stmt(Kind::Assign, Loc), Target(std::move(Target)), Value(Value) {}
  const std::string &target() const { return Target; }
  const Expr *value() const { return Value; }
  static bool classof(const Stmt *S) { return S->kind() == Kind::Assign; }

private:
  std::string Target;
  const Expr *Value;
};

/// `a[i] = e;`
class StoreStmt : public Stmt {
public:
  StoreStmt(std::string Array, const Expr *Index, const Expr *Value,
            SourceLoc Loc)
      : Stmt(Kind::Store, Loc), Array(std::move(Array)), Index(Index),
        Value(Value) {}
  const std::string &array() const { return Array; }
  const Expr *index() const { return Index; }
  const Expr *value() const { return Value; }
  static bool classof(const Stmt *S) { return S->kind() == Kind::Store; }

private:
  std::string Array;
  const Expr *Index;
  const Expr *Value;
};

/// Statement sequence (block).
class SeqStmt : public Stmt {
public:
  SeqStmt(std::vector<const Stmt *> Stmts, SourceLoc Loc)
      : Stmt(Kind::Seq, Loc), Stmts(std::move(Stmts)) {}
  const std::vector<const Stmt *> &stmts() const { return Stmts; }
  static bool classof(const Stmt *S) { return S->kind() == Kind::Seq; }

private:
  std::vector<const Stmt *> Stmts;
};

/// `if (p) s1 else s2` (Else may be a SkipStmt).
class IfStmt : public Stmt {
public:
  IfStmt(const Expr *Cond, const Stmt *Then, const Stmt *Else, SourceLoc Loc)
      : Stmt(Kind::If, Loc), Cond(Cond), Then(Then), Else(Else) {}
  const Expr *cond() const { return Cond; }
  const Stmt *thenStmt() const { return Then; }
  const Stmt *elseStmt() const { return Else; }
  static bool classof(const Stmt *S) { return S->kind() == Kind::If; }

private:
  const Expr *Cond;
  const Stmt *Then;
  const Stmt *Else;
};

/// `while (p) s`
class WhileStmt : public Stmt {
public:
  WhileStmt(const Expr *Cond, const Stmt *Body, SourceLoc Loc)
      : Stmt(Kind::While, Loc), Cond(Cond), Body(Body) {}
  const Expr *cond() const { return Cond; }
  const Stmt *body() const { return Body; }
  static bool classof(const Stmt *S) { return S->kind() == Kind::While; }

private:
  const Expr *Cond;
  const Stmt *Body;
};

/// `ty v = e;` — method-local variable declaration.
class LocalDeclStmt : public Stmt {
public:
  LocalDeclStmt(TypeKind Type, std::string Name, const Expr *Init,
                SourceLoc Loc)
      : Stmt(Kind::LocalDecl, Loc), Type(Type), Name(std::move(Name)),
        Init(Init) {}
  TypeKind type() const { return Type; }
  const std::string &name() const { return Name; }
  const Expr *init() const { return Init; }
  static bool classof(const Stmt *S) { return S->kind() == Kind::LocalDecl; }

private:
  TypeKind Type;
  std::string Name;
  const Expr *Init;
};

//===----------------------------------------------------------------------===//
// Monitor structure
//===----------------------------------------------------------------------===//

/// A conditional critical region: `waituntil (Guard) { Body }`.
struct WaitUntil {
  const Expr *Guard = nullptr;
  const Stmt *Body = nullptr;
  SourceLoc Loc;
  /// Monitor-wide index, assigned by the parser in program order.
  unsigned Id = 0;
};

/// A monitor field.
struct Field {
  std::string Name;
  TypeKind Type = TypeKind::Int;
  bool IsConst = false;
  /// Literal initializer, if present (ints / bools only).
  const Expr *Init = nullptr;
  SourceLoc Loc;
};

/// A method parameter.
struct Param {
  std::string Name;
  TypeKind Type = TypeKind::Int;
};

/// An atomic monitor method: a sequence of waituntil statements.
struct Method {
  std::string Name;
  std::vector<Param> Params;
  std::vector<WaitUntil> Body;
  SourceLoc Loc;
};

/// A whole monitor; owns every AST node via its arena.
class Monitor {
public:
  std::string Name;
  std::vector<Field> Fields;
  /// Optional explicit constructor body (runs after field initializers).
  const Stmt *InitBody = nullptr;
  /// Configuration contracts: boolean expressions over `const` fields that
  /// the environment guarantees at construction (e.g. `requires capacity >
  /// 0;`). They strengthen the initiation check of monitor invariants.
  std::vector<const Expr *> Requires;
  std::vector<Method> Methods;

  const Field *findField(const std::string &Name) const;
  const Method *findMethod(const std::string &Name) const;

  /// All waituntil statements across all methods, in program order
  /// (CCRs(M) in the paper).
  std::vector<const WaitUntil *> ccrs() const;

  /// Arena: nodes are allocated through these and owned by the monitor.
  template <typename T, typename... Args> T *make(Args &&...As) {
    auto Node = std::make_unique<T>(std::forward<Args>(As)...);
    T *Raw = Node.get();
    Arena.push_back(AnyPtr(std::move(Node)));
    return Raw;
  }

private:
  // Type-erased unified arena used by make<>.
  class AnyPtr {
  public:
    template <typename T>
    explicit AnyPtr(std::unique_ptr<T> P)
        : Ptr(P.release()), Deleter([](void *V) { delete static_cast<T *>(V); }) {}
    AnyPtr(AnyPtr &&O) noexcept : Ptr(O.Ptr), Deleter(O.Deleter) {
      O.Ptr = nullptr;
    }
    ~AnyPtr() {
      if (Ptr)
        Deleter(Ptr);
    }

  private:
    void *Ptr;
    void (*Deleter)(void *);
  };
  std::vector<AnyPtr> Arena;
};

/// Renders a statement / expression back to monitor-language source (used by
/// codegen and tests).
std::string printExpr(const Expr *E);
std::string printStmt(const Stmt *S, unsigned Indent = 0);

} // namespace frontend
} // namespace expresso

#endif // EXPRESSO_FRONTEND_AST_H
