//===- frontend/Ast.cpp - Monitor-language AST --------------------------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//

#include "frontend/Ast.h"

#include <sstream>

using namespace expresso;
using namespace expresso::frontend;

const char *frontend::typeName(TypeKind T) {
  switch (T) {
  case TypeKind::Int:
    return "int";
  case TypeKind::Bool:
    return "bool";
  case TypeKind::IntArray:
    return "int[]";
  case TypeKind::BoolArray:
    return "bool[]";
  }
  return "?";
}

const char *frontend::binaryOpSpelling(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add:
    return "+";
  case BinaryOp::Sub:
    return "-";
  case BinaryOp::Mul:
    return "*";
  case BinaryOp::Mod:
    return "%";
  case BinaryOp::Eq:
    return "==";
  case BinaryOp::Ne:
    return "!=";
  case BinaryOp::Lt:
    return "<";
  case BinaryOp::Le:
    return "<=";
  case BinaryOp::Gt:
    return ">";
  case BinaryOp::Ge:
    return ">=";
  case BinaryOp::And:
    return "&&";
  case BinaryOp::Or:
    return "||";
  }
  return "?";
}

const Field *Monitor::findField(const std::string &FieldName) const {
  for (const Field &F : Fields)
    if (F.Name == FieldName)
      return &F;
  return nullptr;
}

const Method *Monitor::findMethod(const std::string &MethodName) const {
  for (const Method &M : Methods)
    if (M.Name == MethodName)
      return &M;
  return nullptr;
}

std::vector<const WaitUntil *> Monitor::ccrs() const {
  std::vector<const WaitUntil *> Result;
  for (const Method &M : Methods)
    for (const WaitUntil &W : M.Body)
      Result.push_back(&W);
  return Result;
}

namespace {

int precedenceOf(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Or:
    return 1;
  case BinaryOp::And:
    return 2;
  case BinaryOp::Eq:
  case BinaryOp::Ne:
    return 3;
  case BinaryOp::Lt:
  case BinaryOp::Le:
  case BinaryOp::Gt:
  case BinaryOp::Ge:
    return 4;
  case BinaryOp::Add:
  case BinaryOp::Sub:
    return 5;
  case BinaryOp::Mul:
  case BinaryOp::Mod:
    return 6;
  }
  return 0;
}

void printExprPrec(std::ostringstream &OS, const Expr *E, int Parent) {
  switch (E->kind()) {
  case Expr::Kind::IntLit:
    OS << cast<IntLit>(E)->value();
    return;
  case Expr::Kind::BoolLit:
    OS << (cast<BoolLit>(E)->value() ? "true" : "false");
    return;
  case Expr::Kind::VarRef:
    OS << cast<VarRef>(E)->name();
    return;
  case Expr::Kind::ArrayRef: {
    const auto *A = cast<ArrayRef>(E);
    OS << A->array() << "[";
    printExprPrec(OS, A->index(), 0);
    OS << "]";
    return;
  }
  case Expr::Kind::Unary: {
    const auto *U = cast<Unary>(E);
    OS << (U->op() == UnaryOp::Not ? "!" : "-");
    printExprPrec(OS, U->operand(), 7);
    return;
  }
  case Expr::Kind::Binary: {
    const auto *B = cast<Binary>(E);
    int Prec = precedenceOf(B->op());
    if (Parent > Prec)
      OS << "(";
    printExprPrec(OS, B->lhs(), Prec);
    OS << " " << binaryOpSpelling(B->op()) << " ";
    printExprPrec(OS, B->rhs(), Prec + 1);
    if (Parent > Prec)
      OS << ")";
    return;
  }
  }
}

void printStmtIndent(std::ostringstream &OS, const Stmt *S, unsigned Indent) {
  std::string Pad(Indent * 2, ' ');
  switch (S->kind()) {
  case Stmt::Kind::Skip:
    OS << Pad << ";\n";
    return;
  case Stmt::Kind::Assign: {
    const auto *A = cast<AssignStmt>(S);
    OS << Pad << A->target() << " = " << printExpr(A->value()) << ";\n";
    return;
  }
  case Stmt::Kind::Store: {
    const auto *St = cast<StoreStmt>(S);
    OS << Pad << St->array() << "[" << printExpr(St->index())
       << "] = " << printExpr(St->value()) << ";\n";
    return;
  }
  case Stmt::Kind::Seq: {
    for (const Stmt *Sub : cast<SeqStmt>(S)->stmts())
      printStmtIndent(OS, Sub, Indent);
    return;
  }
  case Stmt::Kind::If: {
    const auto *I = cast<IfStmt>(S);
    OS << Pad << "if (" << printExpr(I->cond()) << ") {\n";
    printStmtIndent(OS, I->thenStmt(), Indent + 1);
    if (I->elseStmt() && !isa<SkipStmt>(I->elseStmt())) {
      OS << Pad << "} else {\n";
      printStmtIndent(OS, I->elseStmt(), Indent + 1);
    }
    OS << Pad << "}\n";
    return;
  }
  case Stmt::Kind::While: {
    const auto *W = cast<WhileStmt>(S);
    OS << Pad << "while (" << printExpr(W->cond()) << ") {\n";
    printStmtIndent(OS, W->body(), Indent + 1);
    OS << Pad << "}\n";
    return;
  }
  case Stmt::Kind::LocalDecl: {
    const auto *L = cast<LocalDeclStmt>(S);
    OS << Pad << typeName(L->type()) << " " << L->name() << " = "
       << printExpr(L->init()) << ";\n";
    return;
  }
  }
}

} // namespace

std::string frontend::printExpr(const Expr *E) {
  std::ostringstream OS;
  printExprPrec(OS, E, 0);
  return OS.str();
}

std::string frontend::printStmt(const Stmt *S, unsigned Indent) {
  std::ostringstream OS;
  printStmtIndent(OS, S, Indent);
  return OS.str();
}
