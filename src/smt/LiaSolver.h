//===- smt/LiaSolver.h - Linear integer arithmetic feasibility --*- C++ -*-===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Decides feasibility of conjunctions of normalized linear atoms over the
/// integers. This is MiniSmt's theory solver. The pipeline is:
///
///   1. divisibility atoms are encoded with fresh quotient/remainder columns
///      (D | L  becomes  L = D*k);
///   2. Gaussian elimination over the rationals removes equalities, with a
///      GCD integrality test on each pivot row (catches e.g. 2x = 2y + 1);
///   3. Fourier-Motzkin elimination decides rational feasibility and, thanks
///      to the projection property, yields a sample point by
///      back-substitution (integers preferred at each step);
///   4. fractional coordinates trigger branch-and-bound;
///   5. infeasibility returns a conflict core: the subset of input atoms
///      whose combination derived the contradiction.
///
/// Budget exhaustion returns Unknown; MiniSmt then falls back to the Cooper
/// decision procedure, keeping the overall solver complete for QF_LIA.
///
//===----------------------------------------------------------------------===//

#ifndef EXPRESSO_SMT_LIASOLVER_H
#define EXPRESSO_SMT_LIASOLVER_H

#include "logic/Linear.h"
#include "smt/Rational.h"

#include <map>
#include <vector>

namespace expresso {
namespace smt {

enum class LiaStatus { Feasible, Infeasible, Unknown };

/// Outcome of an integer feasibility check.
struct LiaResult {
  LiaStatus Status = LiaStatus::Unknown;
  /// Satisfying integer values per opaque atom term (Feasible only).
  std::map<const logic::Term *, int64_t, logic::TermIdLess> Model;
  /// Indices of input atoms forming an unsatisfiable subset (Infeasible
  /// only). Sound but not guaranteed minimal.
  std::vector<int> Core;
};

/// Integer linear feasibility via Gaussian + Fourier-Motzkin + B&B.
class LiaSolver {
public:
  struct Config {
    int MaxRows = 20000;       ///< FM row budget before giving up.
    int MaxBranchNodes = 4000; ///< Branch-and-bound node budget.
    int MaxDepth = 64;         ///< Branch-and-bound depth cap.
  };

  LiaSolver() = default;
  explicit LiaSolver(Config Cfg) : Cfg(Cfg) {}

  /// Decides the conjunction of \p Atoms over the integers.
  LiaResult solve(const std::vector<logic::LinAtom> &Atoms);

private:
  Config Cfg;
};

} // namespace smt
} // namespace expresso

#endif // EXPRESSO_SMT_LIASOLVER_H
