//===- smt/LiaSolver.cpp - Linear integer arithmetic feasibility -------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//

#include "smt/LiaSolver.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <map>
#include <optional>
#include <set>

using namespace expresso;
using namespace expresso::smt;
using logic::LinAtom;
using logic::LinAtomKind;

namespace {

/// A row `sum Coeffs[i] * col_i + Const (<=|==) 0` with origin tracking.
struct Row {
  std::vector<Rational> Coeffs;
  Rational Const;
  bool IsEq = false;
  std::set<int> Origins;

  bool isGround() const {
    for (const Rational &C : Coeffs)
      if (!C.isZero())
        return false;
    return true;
  }
};

/// Snapshot of one Fourier-Motzkin elimination level, kept for sample
/// extraction. Rows here mention only \p Col and later-eliminated columns.
struct FmLevel {
  int Col = -1;
  std::vector<Row> Bounds; // every row that mentioned Col at this level
};

/// Snapshot of a Gaussian pivot: Col = Expr (a row representing the
/// substituted definition, Coeffs excluding Col itself).
struct PivotLevel {
  int Col = -1;
  std::vector<Rational> ExprCoeffs;
  Rational ExprConst;
};

class FmSolver {
public:
  FmSolver(const LiaSolver::Config &Cfg, int NumCols) : Cfg(Cfg), NumCols(NumCols) {}

  /// Solves the row system over the integers. BranchBudget is shared across
  /// the B&B tree.
  LiaResult solveInt(std::vector<Row> Rows, int Depth, int &BranchBudget);

  /// Integer sample found by the last Feasible solveInt() call.
  const std::vector<int64_t> &intSample() const { return IntSample; }

private:
  /// Rational feasibility + sample point. On success fills Sample.
  LiaStatus solveRational(std::vector<Row> Rows, std::vector<Rational> &Sample,
                          std::vector<int> &Core);

  const LiaSolver::Config &Cfg;
  int NumCols;
  std::vector<int64_t> IntSample;
};

/// Scales a row to integer coefficients and applies the equality GCD test.
/// Returns false (infeasible) when the row has no integer solutions.
bool gcdTestEq(const Row &R) {
  assert(R.IsEq);
  // lcm of denominators
  int64_t L = 1;
  for (const Rational &C : R.Coeffs)
    L = logic::lcm64(L, C.den());
  L = logic::lcm64(L, R.Const.den());
  int64_t G = 0;
  for (const Rational &C : R.Coeffs) {
    int64_t Scaled = C.num() * (L / C.den());
    G = logic::gcd64(G, Scaled);
  }
  int64_t ConstScaled = R.Const.num() * (L / R.Const.den());
  if (G == 0)
    return ConstScaled == 0;
  return ConstScaled % G == 0;
}

LiaStatus FmSolver::solveRational(std::vector<Row> Rows,
                                  std::vector<Rational> &Sample,
                                  std::vector<int> &Core) {
  std::vector<PivotLevel> Pivots;
  std::vector<FmLevel> FmLevels;
  std::vector<bool> Eliminated(NumCols, false);

  // --- Gaussian phase: remove equalities. -------------------------------
  for (;;) {
    int EqIdx = -1;
    for (size_t I = 0; I < Rows.size(); ++I) {
      if (!Rows[I].IsEq)
        continue;
      if (Rows[I].isGround()) {
        if (!Rows[I].Const.isZero()) {
          Core.assign(Rows[I].Origins.begin(), Rows[I].Origins.end());
          return LiaStatus::Infeasible;
        }
        Rows.erase(Rows.begin() + static_cast<long>(I));
        EqIdx = -2; // restart scan
        break;
      }
      EqIdx = static_cast<int>(I);
      break;
    }
    if (EqIdx == -2)
      continue;
    if (EqIdx < 0)
      break;

    Row Eq = Rows[static_cast<size_t>(EqIdx)];
    if (!gcdTestEq(Eq)) {
      Core.assign(Eq.Origins.begin(), Eq.Origins.end());
      return LiaStatus::Infeasible;
    }
    Rows.erase(Rows.begin() + EqIdx);

    // Pick the pivot column with the largest |coefficient| for stability.
    int Pivot = -1;
    for (int C = 0; C < NumCols; ++C)
      if (!Eq.Coeffs[C].isZero() && (Pivot < 0))
        Pivot = C;
    assert(Pivot >= 0);
    Rational A = Eq.Coeffs[Pivot];
    // col = (-1/A) * (rest + const)
    PivotLevel PL;
    PL.Col = Pivot;
    PL.ExprCoeffs.assign(NumCols, Rational(0));
    for (int C = 0; C < NumCols; ++C)
      if (C != Pivot)
        PL.ExprCoeffs[C] = -(Eq.Coeffs[C] / A);
    PL.ExprConst = -(Eq.Const / A);
    Eliminated[Pivot] = true;

    // Substitute into every remaining row.
    for (Row &R : Rows) {
      Rational B = R.Coeffs[Pivot];
      if (B.isZero())
        continue;
      R.Coeffs[Pivot] = Rational(0);
      for (int C = 0; C < NumCols; ++C)
        if (C != Pivot)
          R.Coeffs[C] = R.Coeffs[C] + B * PL.ExprCoeffs[C];
      R.Const = R.Const + B * PL.ExprConst;
      R.Origins.insert(Eq.Origins.begin(), Eq.Origins.end());
    }
    Pivots.push_back(std::move(PL));
  }

  // --- Fourier-Motzkin phase: eliminate columns from inequalities. ------
  for (;;) {
    // Ground-row check and pruning.
    std::vector<Row> Active;
    Active.reserve(Rows.size());
    for (Row &R : Rows) {
      if (R.isGround()) {
        bool Violated = R.IsEq ? !R.Const.isZero() : R.Const.isPositive();
        if (Violated) {
          Core.assign(R.Origins.begin(), R.Origins.end());
          return LiaStatus::Infeasible;
        }
        continue;
      }
      Active.push_back(std::move(R));
    }
    Rows = std::move(Active);
    if (Rows.empty())
      break;

    // Pick the column minimizing the product of positive/negative counts.
    int BestCol = -1;
    long BestCost = std::numeric_limits<long>::max();
    for (int C = 0; C < NumCols; ++C) {
      if (Eliminated[C])
        continue;
      long Pos = 0, Neg = 0;
      for (const Row &R : Rows) {
        if (R.Coeffs[C].isPositive())
          ++Pos;
        else if (R.Coeffs[C].isNegative())
          ++Neg;
      }
      if (Pos + Neg == 0)
        continue;
      long Cost = Pos * Neg;
      if (Cost < BestCost) {
        BestCost = Cost;
        BestCol = C;
      }
    }
    if (BestCol < 0)
      break; // no column occurs: only ground rows remained (handled above)

    FmLevel Level;
    Level.Col = BestCol;
    std::vector<Row> Uppers, Lowers, Others;
    for (Row &R : Rows) {
      if (R.Coeffs[BestCol].isPositive()) {
        Uppers.push_back(R);
        Level.Bounds.push_back(R);
      } else if (R.Coeffs[BestCol].isNegative()) {
        Lowers.push_back(R);
        Level.Bounds.push_back(R);
      } else {
        Others.push_back(std::move(R));
      }
    }
    Eliminated[BestCol] = true;
    FmLevels.push_back(std::move(Level));

    // Combine each (upper, lower) pair.
    std::vector<Row> Derived = std::move(Others);
    // Redundancy filter: map from coefficient vector to index of tightest.
    std::map<std::vector<std::pair<int, Rational>>, size_t> Tightest;
    auto pushDerived = [&](Row R) {
      std::vector<std::pair<int, Rational>> Key;
      for (int C = 0; C < NumCols; ++C)
        if (!R.Coeffs[C].isZero())
          Key.emplace_back(C, R.Coeffs[C]);
      auto It = Tightest.find(Key);
      if (It == Tightest.end()) {
        Derived.push_back(std::move(R));
        Tightest.emplace(std::move(Key), Derived.size() - 1);
        return;
      }
      // Same atom part: keep the larger constant (tighter `<= 0` row).
      Row &Old = Derived[It->second];
      if (R.Const > Old.Const)
        Old = std::move(R);
    };
    for (const Row &U : Uppers) {
      for (const Row &L : Lowers) {
        Row R;
        R.Coeffs.assign(NumCols, Rational(0));
        // Scale: U has coeff a > 0, L has coeff b < 0. Combine
        // (-b)*U + a*L to cancel the column.
        Rational A = U.Coeffs[BestCol];
        Rational B = L.Coeffs[BestCol];
        Rational SU = -B, SL = A;
        for (int C = 0; C < NumCols; ++C)
          R.Coeffs[C] = SU * U.Coeffs[C] + SL * L.Coeffs[C];
        R.Const = SU * U.Const + SL * L.Const;
        R.IsEq = false;
        R.Origins = U.Origins;
        R.Origins.insert(L.Origins.begin(), L.Origins.end());
        if (R.isGround()) {
          if (R.Const.isPositive()) {
            Core.assign(R.Origins.begin(), R.Origins.end());
            return LiaStatus::Infeasible;
          }
          continue;
        }
        pushDerived(std::move(R));
        if (static_cast<int>(Derived.size()) > Cfg.MaxRows)
          return LiaStatus::Unknown;
      }
    }
    Rows = std::move(Derived);
  }

  // --- Sample extraction by back-substitution. ---------------------------
  Sample.assign(NumCols, Rational(0));
  std::vector<bool> Assigned(NumCols, false);

  for (auto It = FmLevels.rbegin(); It != FmLevels.rend(); ++It) {
    // Bounds rows mention It->Col plus columns assigned in earlier reverse
    // steps (or columns that never occurred, which stay 0).
    bool HasLo = false, HasHi = false;
    Rational Lo, Hi;
    for (const Row &R : It->Bounds) {
      Rational Rest = R.Const;
      for (int C = 0; C < NumCols; ++C)
        if (C != It->Col && !R.Coeffs[C].isZero())
          Rest = Rest + R.Coeffs[C] * Sample[C];
      Rational A = R.Coeffs[It->Col];
      assert(!A.isZero());
      Rational Bound = -(Rest / A);
      if (A.isPositive()) {
        // col <= Bound
        if (!HasHi || Bound < Hi) {
          Hi = Bound;
          HasHi = true;
        }
      } else {
        // col >= Bound
        if (!HasLo || Bound > Lo) {
          Lo = Bound;
          HasLo = true;
        }
      }
    }
    Rational V(0);
    if (HasLo && HasHi) {
      assert(Lo <= Hi && "FM projection guarantees a nonempty interval");
      // Prefer an integer in [Lo, Hi], the one closest to zero.
      int64_t IntLo = Lo.ceil(), IntHi = Hi.floor();
      if (IntLo <= IntHi) {
        int64_t Pick = 0;
        if (IntLo > 0)
          Pick = IntLo;
        else if (IntHi < 0)
          Pick = IntHi;
        V = Rational(Pick);
      } else {
        V = Lo; // fractional; B&B will branch on this column
      }
    } else if (HasLo) {
      // Only a lower bound: an integer >= Lo always exists; prefer 0.
      int64_t IntLo = Lo.ceil();
      V = Rational(IntLo <= 0 ? 0 : IntLo);
    } else if (HasHi) {
      // Only an upper bound: prefer 0 if allowed.
      int64_t IntHi = Hi.floor();
      V = Rational(IntHi >= 0 ? 0 : IntHi);
    }
    Sample[It->Col] = V;
    Assigned[It->Col] = true;
  }

  // Gaussian pivots, most recent first.
  for (auto It = Pivots.rbegin(); It != Pivots.rend(); ++It) {
    Rational V = It->ExprConst;
    for (int C = 0; C < NumCols; ++C)
      if (!It->ExprCoeffs[C].isZero())
        V = V + It->ExprCoeffs[C] * Sample[C];
    Sample[It->Col] = V;
    Assigned[It->Col] = true;
  }

  return LiaStatus::Feasible;
}

LiaResult FmSolver::solveInt(std::vector<Row> Rows, int Depth,
                             int &BranchBudget) {
  LiaResult Result;
  if (Depth > Cfg.MaxDepth || BranchBudget <= 0) {
    Result.Status = LiaStatus::Unknown;
    return Result;
  }
  --BranchBudget;

  std::vector<Rational> Sample;
  std::vector<int> Core;
  LiaStatus RatStatus = solveRational(Rows, Sample, Core);
  if (RatStatus == LiaStatus::Infeasible) {
    Result.Status = LiaStatus::Infeasible;
    Result.Core = std::move(Core);
    return Result;
  }
  if (RatStatus == LiaStatus::Unknown) {
    Result.Status = LiaStatus::Unknown;
    return Result;
  }

  // Find a fractional coordinate.
  int FracCol = -1;
  for (int C = 0; C < NumCols; ++C) {
    if (!Sample[C].isInteger()) {
      FracCol = C;
      break;
    }
  }
  if (FracCol < 0) {
    // All-integer sample: done. The caller maps columns back to atom terms.
    Result.Status = LiaStatus::Feasible;
    IntSample.clear();
    IntSample.reserve(static_cast<size_t>(NumCols));
    for (int C = 0; C < NumCols; ++C)
      IntSample.push_back(Sample[static_cast<size_t>(C)].asInteger());
    return Result;
  }

  // Branch: col <= floor(v)  or  col >= ceil(v).
  int64_t Floor = Sample[FracCol].floor();
  Row Left;
  Left.Coeffs.assign(NumCols, Rational(0));
  Left.Coeffs[FracCol] = Rational(1);
  Left.Const = Rational(-Floor);
  Row Right;
  Right.Coeffs.assign(NumCols, Rational(0));
  Right.Coeffs[FracCol] = Rational(-1);
  Right.Const = Rational(Floor + 1);

  std::vector<Row> LeftRows = Rows;
  LeftRows.push_back(Left);
  LiaResult LeftRes = solveInt(std::move(LeftRows), Depth + 1, BranchBudget);
  if (LeftRes.Status == LiaStatus::Feasible)
    return LeftRes;

  std::vector<Row> RightRows = std::move(Rows);
  RightRows.push_back(Right);
  LiaResult RightRes = solveInt(std::move(RightRows), Depth + 1, BranchBudget);
  if (RightRes.Status == LiaStatus::Feasible)
    return RightRes;

  if (LeftRes.Status == LiaStatus::Infeasible &&
      RightRes.Status == LiaStatus::Infeasible) {
    Result.Status = LiaStatus::Infeasible;
    std::set<int> Union(LeftRes.Core.begin(), LeftRes.Core.end());
    Union.insert(RightRes.Core.begin(), RightRes.Core.end());
    Result.Core.assign(Union.begin(), Union.end());
    return Result;
  }
  Result.Status = LiaStatus::Unknown;
  return Result;
}

} // namespace

LiaResult LiaSolver::solve(const std::vector<LinAtom> &Atoms) {
  using logic::Term;

  // Map opaque atom terms to dense columns; allocate fresh columns for
  // divisibility encodings.
  std::map<const Term *, int, logic::TermIdLess> ColOf;
  std::vector<const Term *> TermOfCol;
  auto colFor = [&](const Term *T) {
    auto It = ColOf.find(T);
    if (It != ColOf.end())
      return It->second;
    int C = static_cast<int>(TermOfCol.size());
    ColOf.emplace(T, C);
    TermOfCol.push_back(T);
    return C;
  };
  int NumFresh = 0;
  for (const LinAtom &A : Atoms) {
    for (const auto &[AtomTerm, Coeff] : A.L.Coeffs)
      colFor(AtomTerm);
    if (A.Kind == LinAtomKind::Dvd)
      NumFresh += 1;
    else if (A.Kind == LinAtomKind::NDvd)
      NumFresh += 2;
  }
  int NumAtomCols = static_cast<int>(TermOfCol.size());
  int NumCols = NumAtomCols + NumFresh;

  std::vector<Row> Rows;
  int NextFresh = NumAtomCols;
  for (size_t I = 0; I < Atoms.size(); ++I) {
    const LinAtom &A = Atoms[I];
    Row R;
    R.Coeffs.assign(NumCols, Rational(0));
    for (const auto &[AtomTerm, Coeff] : A.L.Coeffs)
      R.Coeffs[ColOf[AtomTerm]] = Rational(Coeff);
    R.Const = Rational(A.L.Constant);
    R.Origins = {static_cast<int>(I)};
    switch (A.Kind) {
    case LinAtomKind::Le:
      R.IsEq = false;
      Rows.push_back(std::move(R));
      break;
    case LinAtomKind::Eq:
      R.IsEq = true;
      Rows.push_back(std::move(R));
      break;
    case LinAtomKind::Dvd: {
      // L - D*k == 0
      int K = NextFresh++;
      R.IsEq = true;
      R.Coeffs[K] = Rational(-A.Divisor);
      Rows.push_back(std::move(R));
      break;
    }
    case LinAtomKind::NDvd: {
      // L - D*k - r == 0, 1 <= r <= D-1
      int K = NextFresh++;
      int Rem = NextFresh++;
      R.IsEq = true;
      R.Coeffs[K] = Rational(-A.Divisor);
      R.Coeffs[Rem] = Rational(-1);
      Rows.push_back(std::move(R));
      Row RLo;
      RLo.Coeffs.assign(NumCols, Rational(0));
      RLo.Coeffs[Rem] = Rational(-1);
      RLo.Const = Rational(1);
      RLo.Origins = {static_cast<int>(I)};
      Rows.push_back(std::move(RLo));
      Row RHi;
      RHi.Coeffs.assign(NumCols, Rational(0));
      RHi.Coeffs[Rem] = Rational(1);
      RHi.Const = Rational(-(A.Divisor - 1));
      RHi.Origins = {static_cast<int>(I)};
      Rows.push_back(std::move(RHi));
      break;
    }
    }
  }

  FmSolver Solver(Cfg, NumCols);
  int Budget = Cfg.MaxBranchNodes;
  LiaResult R = Solver.solveInt(std::move(Rows), 0, Budget);
  if (R.Status == LiaStatus::Feasible) {
    const std::vector<int64_t> &Vals = Solver.intSample();
    for (int C = 0; C < NumAtomCols; ++C)
      R.Model.emplace(TermOfCol[static_cast<size_t>(C)], Vals[static_cast<size_t>(C)]);
  }
  return R;
}
