//===- smt/MiniSmt.cpp - From-scratch SMT solver for QF_LIA -------------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//

#include "smt/MiniSmt.h"

#include "logic/Simplify.h"
#include "qe/Cooper.h"
#include "smt/Sat.h"

#include <map>
#include <unordered_map>

using namespace expresso;
using namespace expresso::smt;
using namespace expresso::logic;

namespace {

/// Lifts integer if-then-else terms out of atoms: each ite becomes a fresh
/// variable constrained by (c -> v = then) and (!c -> v = else).
class IteLifter {
public:
  IteLifter(TermContext &C) : C(C) {}

  const Term *run(const Term *T, std::vector<const Term *> &SideConditions) {
    const Term *R = rewrite(T);
    SideConditions = std::move(Conditions);
    return R;
  }

private:
  const Term *rewrite(const Term *T) {
    auto It = Memo.find(T);
    if (It != Memo.end())
      return It->second;
    const Term *Result;
    if (T->numOperands() == 0) {
      Result = T;
    } else {
      std::vector<const Term *> Ops;
      Ops.reserve(T->numOperands());
      for (const Term *Op : T->operands())
        Ops.push_back(rewrite(Op));
      switch (T->kind()) {
      case TermKind::Ite: {
        const Term *V = C.freshVar("ite", Sort::Int);
        Conditions.push_back(C.implies(Ops[0], C.eq(V, Ops[1])));
        Conditions.push_back(C.implies(C.not_(Ops[0]), C.eq(V, Ops[2])));
        Result = V;
        break;
      }
      case TermKind::Add:
        Result = C.add(std::move(Ops));
        break;
      case TermKind::Mul:
        Result = C.mul(Ops[0], Ops[1]);
        break;
      case TermKind::Select:
        Result = C.select(Ops[0], Ops[1]);
        break;
      case TermKind::Store:
        Result = C.store(Ops[0], Ops[1], Ops[2]);
        break;
      case TermKind::Eq:
        Result = C.eq(Ops[0], Ops[1]);
        break;
      case TermKind::Le:
        Result = C.le(Ops[0], Ops[1]);
        break;
      case TermKind::Lt:
        Result = C.lt(Ops[0], Ops[1]);
        break;
      case TermKind::Divides:
        Result = C.divides(T->intValue(), Ops[0]);
        break;
      case TermKind::Not:
        Result = C.not_(Ops[0]);
        break;
      case TermKind::And:
        Result = C.and_(std::move(Ops));
        break;
      case TermKind::Or:
        Result = C.or_(std::move(Ops));
        break;
      default:
        Result = T;
        break;
      }
    }
    Memo.emplace(T, Result);
    return Result;
  }

  TermContext &C;
  std::vector<const Term *> Conditions;
  std::unordered_map<const Term *, const Term *> Memo;
};

/// Replaces array reads with fresh variables and returns the Ackermann
/// congruence axioms. Innermost selects are replaced first.
class Ackermannizer {
public:
  Ackermannizer(TermContext &C) : C(C) {}

  /// Returns the select-free formula; axioms are appended to \p Axioms.
  /// Fails (returns nullptr) if a Store survives into this stage.
  const Term *run(const Term *T, std::vector<const Term *> &Axioms,
                  std::map<const Term *, const Term *, logic::TermIdLess>
                      &SelectVarOut) {
    const Term *R = rewrite(T);
    if (!R)
      return nullptr;
    // Congruence: for reads of the same array, equal indices imply equal
    // values. Emit directly in NNF.
    for (const auto &[Array, Reads] : ReadsPerArray) {
      for (size_t I = 0; I < Reads.size(); ++I) {
        for (size_t J = I + 1; J < Reads.size(); ++J) {
          const auto &[Idx1, Var1] = Reads[I];
          const auto &[Idx2, Var2] = Reads[J];
          const Term *Distinct =
              C.or_(C.lt(Idx1, Idx2), C.lt(Idx2, Idx1));
          const Term *EqVals;
          if (Var1->sort() == Sort::Bool) {
            EqVals = C.or_(C.and_(Var1, Var2),
                           C.and_(C.not_(Var1), C.not_(Var2)));
          } else {
            EqVals = C.eq(Var1, Var2);
          }
          Axioms.push_back(C.or_(Distinct, EqVals));
        }
      }
    }
    SelectVarOut = SelectVar;
    return R;
  }

private:
  const Term *rewrite(const Term *T) {
    auto It = Memo.find(T);
    if (It != Memo.end())
      return It->second;
    const Term *Result;
    if (T->kind() == TermKind::Store) {
      Result = nullptr; // unsupported residue
    } else if (T->numOperands() == 0) {
      Result = T;
    } else {
      std::vector<const Term *> Ops;
      Ops.reserve(T->numOperands());
      bool ChildFailed = false;
      for (const Term *Op : T->operands()) {
        const Term *NewOp = rewrite(Op);
        if (!NewOp) {
          ChildFailed = true;
          break;
        }
        Ops.push_back(NewOp);
      }
      if (ChildFailed) {
        Result = nullptr;
      } else {
        switch (T->kind()) {
        case TermKind::Select: {
          if (!Ops[0]->isVar()) {
            Result = nullptr; // select base must be an array variable here
            break;
          }
          const Term *Key = C.select(Ops[0], Ops[1]);
          auto SIt = SelectVar.find(Key);
          if (SIt == SelectVar.end()) {
            const Term *V =
                C.freshVar("sel!" + Ops[0]->varName(), Key->sort());
            SIt = SelectVar.emplace(Key, V).first;
            ReadsPerArray[Ops[0]].emplace_back(Ops[1], V);
          }
          Result = SIt->second;
          break;
        }
        case TermKind::Add:
          Result = C.add(std::move(Ops));
          break;
        case TermKind::Mul:
          Result = C.mul(Ops[0], Ops[1]);
          break;
        case TermKind::Eq:
          Result = C.eq(Ops[0], Ops[1]);
          break;
        case TermKind::Le:
          Result = C.le(Ops[0], Ops[1]);
          break;
        case TermKind::Lt:
          Result = C.lt(Ops[0], Ops[1]);
          break;
        case TermKind::Divides:
          Result = C.divides(T->intValue(), Ops[0]);
          break;
        case TermKind::Not:
          Result = C.not_(Ops[0]);
          break;
        case TermKind::And:
          Result = C.and_(std::move(Ops));
          break;
        case TermKind::Or:
          Result = C.or_(std::move(Ops));
          break;
        case TermKind::Ite:
          Result = C.ite(Ops[0], Ops[1], Ops[2]);
          break;
        default:
          Result = T;
          break;
        }
      }
    }
    Memo.emplace(T, Result);
    return Result;
  }

  TermContext &C;
  std::unordered_map<const Term *, const Term *> Memo;
  /// Canonical select term -> fresh variable. Id-ordered so congruence
  /// axioms and model reconstruction iterate reproducibly.
  std::map<const Term *, const Term *, logic::TermIdLess> SelectVar;
  /// Array var -> list of (index term, fresh var).
  std::map<const Term *, std::vector<std::pair<const Term *, const Term *>>,
           logic::TermIdLess>
      ReadsPerArray;
};

/// Tseitin encoder over monotone NNF with theory-atom literals.
class Encoder {
public:
  Encoder(TermContext &C, SatSolver &Sat) : C(C), Sat(Sat) {}

  /// Encodes \p T; returns the literal representing it, or nullopt on an
  /// unsupported leaf.
  std::optional<Lit> encode(const Term *T) {
    auto It = Memo.find(T);
    if (It != Memo.end())
      return It->second;
    std::optional<Lit> Result = encodeUncached(T);
    if (Result)
      Memo.emplace(T, *Result);
    return Result;
  }

  /// Theory atom attached to a SAT variable, if any.
  const std::map<int, LinAtom> &theoryAtoms() const { return AtomOfVar; }
  const std::map<int, const Term *> &boolVars() const { return BoolVarOfVar; }

private:
  std::optional<Lit> encodeUncached(const Term *T) {
    if (T->isTrue())
      return litTrue();
    if (T->isFalse())
      return ~litTrue();
    switch (T->kind()) {
    case TermKind::Var: {
      assert(T->sort() == Sort::Bool);
      return Lit(satVarForBool(T), false);
    }
    case TermKind::Not: {
      const Term *Op = T->operand(0);
      if (Op->isVar())
        return Lit(satVarForBool(Op), true);
      // Negated divisibility is a positive theory atom of its own.
      auto Atom = normalizeLinAtom(T);
      if (Atom)
        return atomLit(*Atom);
      // Negated boolean equality survives NNF: encode operand, negate.
      auto Inner = encode(Op);
      if (!Inner)
        return std::nullopt;
      return ~*Inner;
    }
    case TermKind::And:
    case TermKind::Or: {
      std::vector<Lit> Kids;
      Kids.reserve(T->numOperands());
      for (const Term *Op : T->operands()) {
        auto K = encode(Op);
        if (!K)
          return std::nullopt;
        Kids.push_back(*K);
      }
      int G = Sat.newVar();
      Lit GL(G, false);
      bool IsAnd = T->kind() == TermKind::And;
      // IsAnd: g <-> (k1 & ... & kn); else g <-> (k1 | ... | kn).
      std::vector<Lit> Long;
      Long.reserve(Kids.size() + 1);
      Long.push_back(IsAnd ? GL : ~GL);
      for (Lit K : Kids) {
        Sat.addClause({IsAnd ? ~GL : GL, IsAnd ? K : ~K});
        Long.push_back(IsAnd ? ~K : K);
      }
      Sat.addClause(std::move(Long));
      return GL;
    }
    case TermKind::Eq:
      if (T->operand(0)->sort() == Sort::Bool) {
        // Residual iff (should be expanded earlier; handle defensively).
        auto A = encode(T->operand(0));
        auto B = encode(T->operand(1));
        if (!A || !B)
          return std::nullopt;
        int G = Sat.newVar();
        Lit GL(G, false);
        Sat.addClause({~GL, ~*A, *B});
        Sat.addClause({~GL, *A, ~*B});
        Sat.addClause({GL, *A, *B});
        Sat.addClause({GL, ~*A, ~*B});
        return GL;
      }
      [[fallthrough]];
    case TermKind::Le:
    case TermKind::Lt:
    case TermKind::Divides: {
      auto Atom = normalizeLinAtom(T);
      if (!Atom)
        return std::nullopt;
      return atomLit(*Atom);
    }
    default:
      return std::nullopt;
    }
  }

  Lit litTrue() {
    if (TrueVar < 0) {
      TrueVar = Sat.newVar();
      Sat.addClause({Lit(TrueVar, false)});
    }
    return Lit(TrueVar, false);
  }

  int satVarForBool(const Term *V) {
    auto It = VarOfBool.find(V);
    if (It != VarOfBool.end())
      return It->second;
    int S = Sat.newVar();
    VarOfBool.emplace(V, S);
    BoolVarOfVar.emplace(S, V);
    return S;
  }

  std::optional<Lit> atomLit(const LinAtom &Atom) {
    if (Atom.L.isConstant()) {
      bool Truth = false;
      switch (Atom.Kind) {
      case LinAtomKind::Le:
        Truth = Atom.L.Constant <= 0;
        break;
      case LinAtomKind::Eq:
        Truth = Atom.L.Constant == 0;
        break;
      case LinAtomKind::Dvd:
        Truth = mathMod(Atom.L.Constant, Atom.Divisor) == 0;
        break;
      case LinAtomKind::NDvd:
        Truth = mathMod(Atom.L.Constant, Atom.Divisor) != 0;
        break;
      }
      return Truth ? litTrue() : ~litTrue();
    }
    // Canonical identity: the rebuilt atom term.
    const Term *Key = Atom.toTerm(C);
    auto It = VarOfAtom.find(Key);
    if (It != VarOfAtom.end())
      return Lit(It->second, false);
    int S = Sat.newVar();
    VarOfAtom.emplace(Key, S);
    AtomOfVar.emplace(S, Atom);
    return Lit(S, false);
  }

  TermContext &C;
  SatSolver &Sat;
  std::unordered_map<const Term *, Lit> Memo;
  std::map<const Term *, int, logic::TermIdLess> VarOfBool;
  std::map<const Term *, int, logic::TermIdLess> VarOfAtom;
  std::map<int, LinAtom> AtomOfVar;
  std::map<int, const Term *> BoolVarOfVar;
  int TrueVar = -1;
};

} // namespace

SmtResult MiniSmt::checkSat(const Term *F) {
  SmtResult Result;
  assert(F->sort() == Sort::Bool && "checkSat requires a boolean term");

  // Variables of the *input* formula: every Sat model binds all of them,
  // even those simplification eliminates, so callers can evaluate the
  // original term against the model.
  std::vector<const Term *> InputVars = freeVars(F);
  auto FillDefaults = [&InputVars](Assignment &Model) {
    for (const Term *V : InputVars) {
      if (Model.count(V->varName()))
        continue;
      switch (V->sort()) {
      case Sort::Int:
        Model[V->varName()] = Value::ofInt(0);
        break;
      case Sort::Bool:
        Model[V->varName()] = Value::ofBool(false);
        break;
      case Sort::IntArray:
      case Sort::BoolArray:
        Model[V->varName()] = Value::ofArray(V->sort(), {}, 0);
        break;
      }
    }
  };

  // --- Preprocessing pipeline. -------------------------------------------
  F = simplify(C, F);
  std::vector<const Term *> IteConds;
  F = IteLifter(C).run(F, IteConds);
  if (!IteConds.empty()) {
    IteConds.push_back(F);
    F = C.and_(std::move(IteConds));
  }
  F = expandBoolEq(C, F);
  F = toNNF(C, F);

  std::vector<const Term *> AckAxioms;
  std::map<const Term *, const Term *, logic::TermIdLess> SelectVars;
  const Term *NoArrays = Ackermannizer(C).run(F, AckAxioms, SelectVars);
  if (!NoArrays)
    return Result; // Unknown: store residue or non-variable array base
  F = NoArrays;
  if (!AckAxioms.empty()) {
    AckAxioms.push_back(F);
    F = C.and_(std::move(AckAxioms));
  }
  F = simplify(C, F);
  if (F->isTrue()) {
    Result.Answer = SatAnswer::Sat;
    Result.ModelComplete = true;
    FillDefaults(Result.Model);
    return Result;
  }
  if (F->isFalse()) {
    Result.Answer = SatAnswer::Unsat;
    return Result;
  }

  // --- Tseitin + CDCL(T) loop. -------------------------------------------
  SatSolver Sat;
  Encoder Enc(C, Sat);
  auto Root = Enc.encode(F);
  if (!Root)
    return Result; // Unknown: unsupported leaf
  Sat.addClause({*Root});

  LiaSolver Lia(Cfg.Lia);
  for (int Round = 0; Round < Cfg.MaxTheoryRounds; ++Round) {
    ++TheoryRounds;
    // Cancellation poll: one relaxed load per theory round. An expired
    // token degrades the answer to Unknown, which every caller treats
    // conservatively (and a cancelled placement discards outright).
    if (Cfg.Cancel && Cfg.Cancel->expired())
      return Result; // Unknown: cancelled
    if (Sat.solve() == SatSolver::Result::Unsat) {
      Result.Answer = SatAnswer::Unsat;
      return Result;
    }
    // Gather theory atoms assigned true. Monotone NNF makes it sound to
    // ignore atoms assigned false.
    std::vector<LinAtom> Atoms;
    std::vector<int> AtomVars;
    for (const auto &[VarIdx, Atom] : Enc.theoryAtoms()) {
      if (Sat.modelValue(VarIdx)) {
        Atoms.push_back(Atom);
        AtomVars.push_back(VarIdx);
      }
    }
    LiaResult LR = Lia.solve(Atoms);
    if (LR.Status == LiaStatus::Infeasible) {
      std::vector<Lit> Block;
      Block.reserve(LR.Core.size());
      for (int CoreIdx : LR.Core)
        Block.push_back(Lit(AtomVars[static_cast<size_t>(CoreIdx)], true));
      if (Block.empty())
        // Degenerate empty core: contradiction independent of atoms.
        return Result; // Unknown (should not happen)
      Sat.addClause(std::move(Block));
      continue;
    }
    if (LR.Status == LiaStatus::Unknown) {
      if (!Cfg.UseCooperFallback)
        return Result; // Unknown
      std::vector<const Term *> Conj;
      Conj.reserve(Atoms.size());
      for (const LinAtom &A : Atoms)
        Conj.push_back(A.toTerm(C));
      auto Decided = qe::decideSat(C, C.and_(std::move(Conj)));
      if (!Decided)
        return Result; // Unknown
      if (!*Decided) {
        std::vector<Lit> Block;
        for (int V : AtomVars)
          Block.push_back(Lit(V, true));
        Sat.addClause(std::move(Block));
        continue;
      }
      // Satisfiable but no numeric witness: report partial model.
      Result.Answer = SatAnswer::Sat;
      for (const auto &[VarIdx, BV] : Enc.boolVars())
        Result.Model[BV->varName()] = Value::ofBool(Sat.modelValue(VarIdx));
      Result.ModelComplete = false;
      FillDefaults(Result.Model);
      return Result;
    }

    // Feasible: assemble the full model.
    Result.Answer = SatAnswer::Sat;
    Result.ModelComplete = true;
    for (const auto &[VarIdx, BV] : Enc.boolVars())
      Result.Model[BV->varName()] = Value::ofBool(Sat.modelValue(VarIdx));
    for (const auto &[AtomTerm, V] : LR.Model) {
      if (AtomTerm->isVar()) {
        Result.Model[AtomTerm->varName()] = AtomTerm->sort() == Sort::Bool
                                                ? Value::ofBool(V != 0)
                                                : Value::ofInt(V);
      }
    }
    // Default any variable (of the processed or original formula) not
    // constrained by the theory.
    for (const Term *V : freeVars(F)) {
      if (Result.Model.count(V->varName()))
        continue;
      if (V->sort() == Sort::Int)
        Result.Model[V->varName()] = Value::ofInt(0);
      else if (V->sort() == Sort::Bool)
        Result.Model[V->varName()] = Value::ofBool(false);
    }
    // Reconstruct array models from Ackermann select variables.
    std::map<const Term *, Value, logic::TermIdLess> ArrayVals;
    for (const auto &[SelectTerm, FreshVar] : SelectVars) {
      const Term *Array = SelectTerm->operand(0);
      const Term *Index = SelectTerm->operand(1);
      auto VIt = Result.Model.find(FreshVar->varName());
      if (VIt == Result.Model.end())
        continue;
      int64_t IdxVal = evaluate(Index, Result.Model).asInt();
      auto [AIt, Inserted] = ArrayVals.try_emplace(
          Array, Value::ofArray(Array->sort(), {}, 0));
      AIt->second.A[IdxVal] = VIt->second.I;
    }
    for (const auto &[Array, AV] : ArrayVals)
      Result.Model[Array->varName()] = AV;
    FillDefaults(Result.Model);
    return Result;
  }
  return Result; // Unknown: round budget exhausted
}
