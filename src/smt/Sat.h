//===- smt/Sat.h - CDCL SAT core --------------------------------*- C++ -*-===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A self-contained CDCL SAT solver: two-watched-literal propagation,
/// first-UIP clause learning, VSIDS-style activities with phase saving, and
/// geometric restarts. It is the propositional engine underneath MiniSmt's
/// lazy DPLL(T) loop. The solver is incremental in the "add clauses between
/// solve() calls" sense, which is exactly what theory-conflict blocking
/// clauses need.
///
//===----------------------------------------------------------------------===//

#ifndef EXPRESSO_SMT_SAT_H
#define EXPRESSO_SMT_SAT_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace expresso {
namespace smt {

/// A literal: variable index with a sign. Encoded as 2*var+sign internally.
class Lit {
public:
  Lit() = default;
  Lit(int Var, bool Negated) : Code(2 * Var + (Negated ? 1 : 0)) {}

  int var() const { return Code >> 1; }
  bool negated() const { return Code & 1; }
  Lit operator~() const {
    Lit L;
    L.Code = Code ^ 1;
    return L;
  }
  int code() const { return Code; }
  bool operator==(const Lit &O) const = default;

private:
  int Code = -2;
};

/// Ternary truth value of a variable under the current partial assignment.
enum class LBool : uint8_t { False = 0, True = 1, Undef = 2 };

/// CDCL SAT solver. Usage: newVar() for each variable, addClause() for each
/// clause, then solve(); repeat addClause()+solve() for incremental use.
class SatSolver {
public:
  enum class Result { Sat, Unsat };

  /// Creates a fresh variable and returns its index.
  int newVar();

  int numVars() const { return static_cast<int>(Activity.size()); }

  /// Adds a clause; returns false if the solver is already unsatisfiable at
  /// level 0 (conflicting unit insertions).
  bool addClause(std::vector<Lit> Lits);

  Result solve();

  /// Value of variable \p Var in the satisfying assignment; only valid after
  /// solve() returned Sat.
  bool modelValue(int Var) const { return Model[Var]; }

  uint64_t numConflicts() const { return Conflicts; }
  uint64_t numDecisions() const { return Decisions; }
  uint64_t numPropagations() const { return Propagations; }

private:
  struct Clause {
    std::vector<Lit> Lits;
    bool Learnt = false;
    double Activity = 0;
  };
  using ClauseRef = int;
  static constexpr ClauseRef NoReason = -1;

  LBool value(Lit L) const {
    LBool V = Assigns[L.var()];
    if (V == LBool::Undef)
      return LBool::Undef;
    bool B = (V == LBool::True) != L.negated();
    return B ? LBool::True : LBool::False;
  }

  void enqueue(Lit L, ClauseRef Reason);
  ClauseRef propagate();
  void analyze(ClauseRef Confl, std::vector<Lit> &Learnt, int &BtLevel);
  void backtrack(int Level);
  Lit pickBranchLit();
  void bumpVar(int Var);
  void bumpClause(ClauseRef C);
  void decayActivities();
  void attachClause(ClauseRef C);
  void reduceLearnts();

  std::vector<Clause> Clauses;
  std::vector<std::vector<ClauseRef>> Watches; // indexed by literal code
  std::vector<LBool> Assigns;
  std::vector<bool> Phase;
  std::vector<int> Level;
  std::vector<ClauseRef> Reason;
  std::vector<Lit> Trail;
  std::vector<int> TrailLim;
  size_t PropagateHead = 0;
  std::vector<double> Activity;
  double VarInc = 1.0;
  double ClauseInc = 1.0;
  std::vector<bool> Model;
  bool OkAtLevel0 = true;

  std::vector<bool> Seen; // scratch for analyze()

  uint64_t Conflicts = 0;
  uint64_t Decisions = 0;
  uint64_t Propagations = 0;
};

} // namespace smt
} // namespace expresso

#endif // EXPRESSO_SMT_SAT_H
