//===- smt/Sat.cpp - CDCL SAT core -------------------------------------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//

#include "smt/Sat.h"

#include <algorithm>
#include <cassert>

using namespace expresso;
using namespace expresso::smt;

int SatSolver::newVar() {
  int V = numVars();
  Assigns.push_back(LBool::Undef);
  Phase.push_back(false);
  Level.push_back(0);
  Reason.push_back(NoReason);
  Activity.push_back(0.0);
  Seen.push_back(false);
  Watches.emplace_back();
  Watches.emplace_back();
  Model.push_back(false);
  return V;
}

bool SatSolver::addClause(std::vector<Lit> Lits) {
  if (!OkAtLevel0)
    return false;
  // Incremental use: always insert at level 0.
  backtrack(0);

  // Remove duplicates and literals already false at level 0; detect
  // tautologies and satisfied clauses.
  std::sort(Lits.begin(), Lits.end(),
            [](Lit A, Lit B) { return A.code() < B.code(); });
  Lits.erase(std::unique(Lits.begin(), Lits.end()), Lits.end());
  std::vector<Lit> Pruned;
  Pruned.reserve(Lits.size());
  for (size_t I = 0; I < Lits.size(); ++I) {
    Lit L = Lits[I];
    if (I + 1 < Lits.size() && Lits[I + 1] == ~L)
      return true; // tautology: L and not L in one clause
    if (value(L) == LBool::True)
      return true; // already satisfied at level 0
    if (value(L) == LBool::False)
      continue; // falsified at level 0: drop the literal
    Pruned.push_back(L);
  }
  if (Pruned.empty()) {
    OkAtLevel0 = false;
    return false;
  }
  if (Pruned.size() == 1) {
    enqueue(Pruned[0], NoReason);
    if (propagate() != NoReason)
      OkAtLevel0 = false;
    return OkAtLevel0;
  }
  Clauses.push_back({std::move(Pruned), false, 0});
  attachClause(static_cast<ClauseRef>(Clauses.size() - 1));
  return true;
}

void SatSolver::attachClause(ClauseRef C) {
  const Clause &Cl = Clauses[C];
  assert(Cl.Lits.size() >= 2);
  Watches[(~Cl.Lits[0]).code()].push_back(C);
  Watches[(~Cl.Lits[1]).code()].push_back(C);
}

void SatSolver::enqueue(Lit L, ClauseRef Why) {
  assert(value(L) == LBool::Undef);
  Assigns[L.var()] = L.negated() ? LBool::False : LBool::True;
  Level[L.var()] = static_cast<int>(TrailLim.size());
  Reason[L.var()] = Why;
  Trail.push_back(L);
}

SatSolver::ClauseRef SatSolver::propagate() {
  while (PropagateHead < Trail.size()) {
    Lit P = Trail[PropagateHead++];
    ++Propagations;
    // Clauses watching ~P need a new watch or become unit/conflicting.
    std::vector<ClauseRef> &Watchers = Watches[P.code()];
    size_t Keep = 0;
    for (size_t I = 0; I < Watchers.size(); ++I) {
      ClauseRef C = Watchers[I];
      Clause &Cl = Clauses[C];
      // Normalize so the false watch is Lits[1].
      Lit NotP = ~P;
      if (Cl.Lits[0] == NotP)
        std::swap(Cl.Lits[0], Cl.Lits[1]);
      assert(Cl.Lits[1] == NotP);
      if (value(Cl.Lits[0]) == LBool::True) {
        Watchers[Keep++] = C; // clause satisfied; keep watching
        continue;
      }
      // Find a replacement watch.
      bool FoundWatch = false;
      for (size_t K = 2; K < Cl.Lits.size(); ++K) {
        if (value(Cl.Lits[K]) != LBool::False) {
          std::swap(Cl.Lits[1], Cl.Lits[K]);
          Watches[(~Cl.Lits[1]).code()].push_back(C);
          FoundWatch = true;
          break;
        }
      }
      if (FoundWatch)
        continue;
      // Clause is unit or conflicting.
      Watchers[Keep++] = C;
      if (value(Cl.Lits[0]) == LBool::False) {
        // Conflict: keep remaining watchers and report.
        for (size_t J = I + 1; J < Watchers.size(); ++J)
          Watchers[Keep++] = Watchers[J];
        Watchers.resize(Keep);
        PropagateHead = Trail.size();
        return C;
      }
      enqueue(Cl.Lits[0], C);
    }
    Watchers.resize(Keep);
  }
  return NoReason;
}

void SatSolver::analyze(ClauseRef Confl, std::vector<Lit> &Learnt,
                        int &BtLevel) {
  Learnt.clear();
  Learnt.push_back(Lit()); // slot for the asserting literal
  int PathCount = 0;
  Lit P;
  bool PValid = false;
  size_t Index = Trail.size();
  int CurrentLevel = static_cast<int>(TrailLim.size());
  std::vector<int> Touched;

  for (;;) {
    assert(Confl != NoReason && "conflict without reason clause");
    Clause &Cl = Clauses[Confl];
    if (Cl.Learnt)
      bumpClause(Confl);
    for (size_t I = PValid ? 1 : 0; I < Cl.Lits.size(); ++I) {
      Lit Q = Cl.Lits[I];
      if (Seen[Q.var()] || Level[Q.var()] == 0)
        continue;
      Seen[Q.var()] = true;
      Touched.push_back(Q.var());
      bumpVar(Q.var());
      if (Level[Q.var()] >= CurrentLevel) {
        ++PathCount;
      } else {
        Learnt.push_back(Q);
      }
    }
    // Walk back the trail to the next marked literal.
    while (!Seen[Trail[Index - 1].var()])
      --Index;
    P = Trail[--Index];
    PValid = true;
    Confl = Reason[P.var()];
    Seen[P.var()] = false;
    --PathCount;
    if (PathCount <= 0)
      break;
  }
  Learnt[0] = ~P;

  // Compute backtrack level: highest level among the other literals.
  BtLevel = 0;
  size_t MaxIdx = 1;
  for (size_t I = 1; I < Learnt.size(); ++I) {
    if (Level[Learnt[I].var()] > BtLevel) {
      BtLevel = Level[Learnt[I].var()];
      MaxIdx = I;
    }
  }
  if (Learnt.size() > 1)
    std::swap(Learnt[1], Learnt[MaxIdx]);
  for (int V : Touched)
    Seen[V] = false;
}

void SatSolver::backtrack(int TargetLevel) {
  if (static_cast<int>(TrailLim.size()) <= TargetLevel)
    return;
  size_t Bound = TrailLim[TargetLevel];
  for (size_t I = Trail.size(); I > Bound; --I) {
    Lit L = Trail[I - 1];
    Phase[L.var()] = !L.negated();
    Assigns[L.var()] = LBool::Undef;
    Reason[L.var()] = NoReason;
  }
  Trail.resize(Bound);
  TrailLim.resize(TargetLevel);
  PropagateHead = Trail.size();
}

Lit SatSolver::pickBranchLit() {
  int Best = -1;
  double BestAct = -1.0;
  for (int V = 0; V < numVars(); ++V) {
    if (Assigns[V] == LBool::Undef && Activity[V] > BestAct) {
      BestAct = Activity[V];
      Best = V;
    }
  }
  if (Best < 0)
    return Lit();
  return Lit(Best, !Phase[Best]);
}

void SatSolver::bumpVar(int Var) {
  Activity[Var] += VarInc;
  if (Activity[Var] > 1e100) {
    for (double &A : Activity)
      A *= 1e-100;
    VarInc *= 1e-100;
  }
}

void SatSolver::bumpClause(ClauseRef C) {
  Clauses[C].Activity += ClauseInc;
  if (Clauses[C].Activity > 1e100) {
    for (Clause &Cl : Clauses)
      if (Cl.Learnt)
        Cl.Activity *= 1e-100;
    ClauseInc *= 1e-100;
  }
}

void SatSolver::decayActivities() {
  VarInc /= 0.95;
  ClauseInc /= 0.999;
}

void SatSolver::reduceLearnts() {
  // Learnt-clause deletion is unnecessary at monitor-VC scale; the hook is
  // kept for symmetry with classic CDCL structure.
}

SatSolver::Result SatSolver::solve() {
  if (!OkAtLevel0)
    return Result::Unsat;
  backtrack(0);
  if (propagate() != NoReason) {
    OkAtLevel0 = false;
    return Result::Unsat;
  }

  uint64_t RestartLimit = 100;
  uint64_t ConflictsSinceRestart = 0;

  for (;;) {
    ClauseRef Confl = propagate();
    if (Confl != NoReason) {
      ++Conflicts;
      ++ConflictsSinceRestart;
      if (TrailLim.empty()) {
        OkAtLevel0 = false;
        return Result::Unsat;
      }
      std::vector<Lit> Learnt;
      int BtLevel = 0;
      analyze(Confl, Learnt, BtLevel);
      backtrack(BtLevel);
      if (Learnt.size() == 1) {
        enqueue(Learnt[0], NoReason);
      } else {
        Clauses.push_back({Learnt, true, 0});
        ClauseRef C = static_cast<ClauseRef>(Clauses.size() - 1);
        attachClause(C);
        bumpClause(C);
        enqueue(Learnt[0], C);
      }
      decayActivities();
      continue;
    }
    if (ConflictsSinceRestart >= RestartLimit) {
      ConflictsSinceRestart = 0;
      RestartLimit = RestartLimit + RestartLimit / 2;
      backtrack(0);
      continue;
    }
    Lit Next = pickBranchLit();
    if (Next.code() < 0) {
      // Complete assignment found.
      for (int V = 0; V < numVars(); ++V)
        Model[V] = Assigns[V] == LBool::True;
      return Result::Sat;
    }
    ++Decisions;
    TrailLim.push_back(static_cast<int>(Trail.size()));
    enqueue(Next, NoReason);
  }
}
