//===- smt/Rational.h - Exact rational arithmetic ---------------*- C++ -*-===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exact rationals over 64-bit numerator/denominator with 128-bit
/// intermediates. Monitor verification conditions have tiny coefficients, so
/// 64 bits are ample; overflow asserts rather than silently wrapping.
///
//===----------------------------------------------------------------------===//

#ifndef EXPRESSO_SMT_RATIONAL_H
#define EXPRESSO_SMT_RATIONAL_H

#include "logic/Linear.h"

#include <cassert>
#include <cstdint>
#include <string>

namespace expresso {
namespace smt {

/// An exact rational; denominator is always positive and the fraction is
/// always in lowest terms.
class Rational {
public:
  Rational() = default;
  Rational(int64_t N) : Num(N), Den(1) {} // NOLINT: implicit by design
  Rational(int64_t N, int64_t D) : Num(N), Den(D) {
    assert(D != 0 && "zero denominator");
    normalize();
  }

  int64_t num() const { return Num; }
  int64_t den() const { return Den; }

  bool isZero() const { return Num == 0; }
  bool isInteger() const { return Den == 1; }
  bool isNegative() const { return Num < 0; }
  bool isPositive() const { return Num > 0; }

  int64_t floor() const { return logic::floorDiv(Num, Den); }
  int64_t ceil() const { return logic::ceilDiv(Num, Den); }

  /// Integer value; asserts isInteger().
  int64_t asInteger() const {
    assert(isInteger() && "rational is not integral");
    return Num;
  }

  Rational operator-() const { return fromRaw(-static_cast<__int128>(Num), Den); }

  friend Rational operator+(const Rational &A, const Rational &B) {
    __int128 N = static_cast<__int128>(A.Num) * B.Den +
                 static_cast<__int128>(B.Num) * A.Den;
    __int128 D = static_cast<__int128>(A.Den) * B.Den;
    return fromRaw(N, D);
  }
  friend Rational operator-(const Rational &A, const Rational &B) {
    return A + (-B);
  }
  friend Rational operator*(const Rational &A, const Rational &B) {
    __int128 N = static_cast<__int128>(A.Num) * B.Num;
    __int128 D = static_cast<__int128>(A.Den) * B.Den;
    return fromRaw(N, D);
  }
  friend Rational operator/(const Rational &A, const Rational &B) {
    assert(!B.isZero() && "division by zero");
    __int128 N = static_cast<__int128>(A.Num) * B.Den;
    __int128 D = static_cast<__int128>(A.Den) * B.Num;
    return fromRaw(N, D);
  }

  friend bool operator==(const Rational &A, const Rational &B) {
    return A.Num == B.Num && A.Den == B.Den;
  }
  friend bool operator!=(const Rational &A, const Rational &B) {
    return !(A == B);
  }
  friend bool operator<(const Rational &A, const Rational &B) {
    return static_cast<__int128>(A.Num) * B.Den <
           static_cast<__int128>(B.Num) * A.Den;
  }
  friend bool operator<=(const Rational &A, const Rational &B) {
    return !(B < A);
  }
  friend bool operator>(const Rational &A, const Rational &B) { return B < A; }
  friend bool operator>=(const Rational &A, const Rational &B) {
    return !(A < B);
  }

  std::string str() const {
    if (Den == 1)
      return std::to_string(Num);
    return std::to_string(Num) + "/" + std::to_string(Den);
  }

private:
  static Rational fromRaw(__int128 N, __int128 D) {
    assert(D != 0);
    if (D < 0) {
      N = -N;
      D = -D;
    }
    __int128 G = gcd128(N < 0 ? -N : N, D);
    if (G > 1) {
      N /= G;
      D /= G;
    }
    Rational R;
    assert(N <= INT64_MAX && N >= INT64_MIN && D <= INT64_MAX &&
           "rational overflow");
    R.Num = static_cast<int64_t>(N);
    R.Den = static_cast<int64_t>(D);
    return R;
  }

  static __int128 gcd128(__int128 A, __int128 B) {
    while (B != 0) {
      __int128 T = A % B;
      A = B;
      B = T;
    }
    return A == 0 ? 1 : A;
  }

  void normalize() {
    *this = fromRaw(Num, Den);
  }

  int64_t Num = 0;
  int64_t Den = 1;
};

} // namespace smt
} // namespace expresso

#endif // EXPRESSO_SMT_RATIONAL_H
