//===- smt/MiniSmt.h - From-scratch SMT solver for QF_LIA -------*- C++ -*-===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// MiniSmt: a self-contained SMT solver for the fragment Expresso needs —
/// quantifier-free linear integer arithmetic with booleans and arrays
/// (via Ackermann reduction). The paper discharges verification conditions
/// with Z3; MiniSmt is the from-scratch substitute, and the Z3 backend
/// remains available for differential testing.
///
/// Architecture (lazy offline DPLL(T)):
///
///   formula --> ite lifting --> iff expansion --> NNF (atoms positive)
///           --> Ackermannization of array reads --> Tseitin CNF
///           --> CDCL enumeration  <==>  LIA feasibility of true atoms
///                                        (FM + branch&bound; Cooper fallback)
///
/// NNF monotonization is what makes the "check only the atoms assigned
/// true" theory interaction sound: arithmetic negations are eliminated
/// syntactically, so the propositional skeleton is monotone in every theory
/// atom.
///
//===----------------------------------------------------------------------===//

#ifndef EXPRESSO_SMT_MINISMT_H
#define EXPRESSO_SMT_MINISMT_H

#include "logic/TermOps.h"
#include "smt/LiaSolver.h"
#include "support/CancelToken.h"

#include <cstdint>

namespace expresso {
namespace smt {

/// Three-valued satisfiability answer.
enum class SatAnswer { Sat, Unsat, Unknown };

/// Result of a satisfiability check. On Sat, Model maps variable names to
/// values; ModelComplete is false when the Cooper fallback proved
/// satisfiability without producing numerals.
struct SmtResult {
  SatAnswer Answer = SatAnswer::Unknown;
  logic::Assignment Model;
  bool ModelComplete = false;
};

/// The from-scratch SMT solver. Stateless between checkSat calls apart from
/// statistics; cheap to construct.
class MiniSmt {
public:
  struct Config {
    LiaSolver::Config Lia;
    /// Cap on CDCL/theory round-trips before answering Unknown.
    int MaxTheoryRounds = 5000;
    /// Use Cooper's procedure to decide conjunctions the FM+B&B layer gave
    /// up on (keeps the solver complete for pure LIA).
    bool UseCooperFallback = true;
    /// Cooperative cancellation: polled at the top of every CDCL/theory
    /// round; an expired token makes checkSat answer Unknown. Not owned.
    const support::CancelToken *Cancel = nullptr;
  };

  explicit MiniSmt(logic::TermContext &C) : C(C) {}
  MiniSmt(logic::TermContext &C, Config Cfg) : C(C), Cfg(Cfg) {}

  /// Decides satisfiability of boolean term \p F.
  SmtResult checkSat(const logic::Term *F);

  uint64_t numTheoryRounds() const { return TheoryRounds; }

private:
  logic::TermContext &C;
  Config Cfg;
  uint64_t TheoryRounds = 0;
};

} // namespace smt
} // namespace expresso

#endif // EXPRESSO_SMT_MINISMT_H
