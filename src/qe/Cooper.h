//===- qe/Cooper.h - Cooper's quantifier elimination ------------*- C++ -*-===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cooper's quantifier elimination for linear integer arithmetic, plus
/// boolean-variable elimination by case splitting. This module powers the
/// abduction engine of Section 5: candidate monitor invariants are computed
/// as universally quantified weakenings ∀V_elim.(P → wp(s, Q)), which Cooper
/// turns back into quantifier-free predicates.
///
/// The implementation follows the textbook lower-bound ("B-set / F-minus-
/// infinity") formulation with two practical refinements: miniscoping
/// (∃ distributes over ∨ exactly, and over ∧ for conjuncts not mentioning
/// the variable) and aggressive simplification after each expansion step.
///
/// Elimination is partial: if the variable occurs non-linearly (inside an
/// array index or an integer ite), the functions return nullopt and callers
/// fall back to conservative behaviour (the paper's Section 9 posture).
///
//===----------------------------------------------------------------------===//

#ifndef EXPRESSO_QE_COOPER_H
#define EXPRESSO_QE_COOPER_H

#include "logic/Term.h"

#include <optional>
#include <vector>

namespace expresso {
namespace qe {

/// Limits on formula growth during elimination.
struct QeConfig {
  /// Maximum lcm of divisors (the `D` in Cooper's disjunction) tolerated
  /// before giving up; guards against blowup from large coefficients.
  int64_t MaxDivisorLcm = 128;
  /// Maximum number of disjuncts materialized per eliminated variable.
  size_t MaxDisjuncts = 512;
};

/// Computes a quantifier-free equivalent of ∃Var. F. \p Var may be Int
/// (Cooper) or Bool (case split). Returns nullopt when Var occurs
/// non-linearly or the growth limits trip.
std::optional<const logic::Term *>
eliminateExists(logic::TermContext &C, const logic::Term *F,
                const logic::Term *Var, const QeConfig &Cfg = QeConfig());

/// Computes a quantifier-free equivalent of ∀Var. F (as ¬∃Var.¬F).
std::optional<const logic::Term *>
eliminateForall(logic::TermContext &C, const logic::Term *F,
                const logic::Term *Var, const QeConfig &Cfg = QeConfig());

/// Eliminates a list of variables existentially, in order.
std::optional<const logic::Term *>
eliminateExists(logic::TermContext &C, const logic::Term *F,
                const std::vector<const logic::Term *> &Vars,
                const QeConfig &Cfg = QeConfig());

/// Eliminates a list of variables universally, in order.
std::optional<const logic::Term *>
eliminateForall(logic::TermContext &C, const logic::Term *F,
                const std::vector<const logic::Term *> &Vars,
                const QeConfig &Cfg = QeConfig());

/// Decides a QF_LIA formula by eliminating *all* of its free variables
/// existentially and evaluating the resulting ground formula. Complete for
/// pure LIA+Bool inputs; returns nullopt for inputs outside the fragment.
/// Used as MiniSmt's completeness fallback.
std::optional<bool> decideSat(logic::TermContext &C, const logic::Term *F,
                              const QeConfig &Cfg = QeConfig());

} // namespace qe
} // namespace expresso

#endif // EXPRESSO_QE_COOPER_H
