//===- qe/Cooper.cpp - Cooper's quantifier elimination -----------------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//

#include "qe/Cooper.h"

#include "logic/Linear.h"
#include "logic/Simplify.h"
#include "logic/TermOps.h"

#include <cassert>

using namespace expresso;
using namespace expresso::qe;
using namespace expresso::logic;

namespace {

/// Rewrites every atom of (NNF) \p F that mentions \p X. Returns nullopt if
/// any occurrence of X is non-linear (inside a select index, an ite, or an
/// opaque atom).
///
/// Output invariants (for the fresh variable Y = Delta * X):
///   every atom containing Y has coefficient exactly +1 or -1 on Y, and
///   equalities on Y have been split into two inequalities.
struct ScaledFormula {
  const Term *F = nullptr;
  const Term *Y = nullptr;
  int64_t Delta = 1;
};

class CooperEliminator {
public:
  CooperEliminator(TermContext &C, const QeConfig &Cfg) : C(C), Cfg(Cfg) {}

  std::optional<const Term *> elimExists(const Term *F, const Term *X) {
    if (!occurs(F, X))
      return F;
    if (X->sort() == Sort::Bool) {
      const Term *T1 = substitute(C, F, X, C.getTrue());
      const Term *T0 = substitute(C, F, X, C.getFalse());
      return simplify(C, C.or_(T1, T0));
    }
    assert(X->sort() == Sort::Int && "can only eliminate int/bool variables");
    F = expandBoolEq(C, F);
    F = simplify(C, toNNF(C, F));
    return elimExistsNNF(F, X);
  }

private:
  /// Miniscoping driver; \p F is NNF.
  std::optional<const Term *> elimExistsNNF(const Term *F, const Term *X) {
    if (!occurs(F, X))
      return F;
    if (F->kind() == TermKind::Or) {
      // ∃x (A ∨ B)  =  (∃x A) ∨ (∃x B)
      std::vector<const Term *> Parts;
      Parts.reserve(F->numOperands());
      for (const Term *Op : F->operands()) {
        auto Sub = elimExistsNNF(Op, X);
        if (!Sub)
          return std::nullopt;
        Parts.push_back(*Sub);
      }
      return simplify(C, C.or_(std::move(Parts)));
    }
    if (F->kind() == TermKind::And) {
      // ∃x (A ∧ B)  =  A ∧ ∃x B   when x does not occur in A.
      std::vector<const Term *> Without, With;
      for (const Term *Op : F->operands()) {
        (occurs(Op, X) ? With : Without).push_back(Op);
      }
      if (!Without.empty()) {
        auto Sub = cooperCore(C.and_(With), X);
        if (!Sub)
          return std::nullopt;
        Without.push_back(*Sub);
        return simplify(C, C.and_(std::move(Without)));
      }
      return cooperCore(F, X);
    }
    return cooperCore(F, X);
  }

  /// The quantifier-elimination kernel on an NNF formula where every
  /// conjunct mentions X.
  std::optional<const Term *> cooperCore(const Term *F, const Term *X) {
    // Phase 1: find delta = lcm of |coefficients| of X across atoms; verify
    // linear occurrences.
    int64_t Delta = 1;
    if (!scanCoefficients(F, X, Delta))
      return std::nullopt;

    // Phase 2: rewrite atoms over Y = Delta * X, with unit coefficients.
    const Term *Y = C.freshVar("qe!y", Sort::Int);
    const Term *Scaled = rewriteAtoms(F, X, Y, Delta);
    if (!Scaled)
      return std::nullopt;
    if (Delta != 1)
      Scaled = C.and_(Scaled, C.divides(Delta, Y));

    // Phase 3: collect the divisor lcm D and the lower-bound B-set.
    int64_t D = 1;
    std::vector<const Term *> BSet;
    collectCooperData(Scaled, Y, D, BSet);
    if (D > Cfg.MaxDivisorLcm)
      return std::nullopt;
    if (static_cast<size_t>(D) * (BSet.size() + 1) > Cfg.MaxDisjuncts)
      return std::nullopt;

    // Phase 4: build the Cooper disjunction.
    const Term *FMinusInf = buildMinusInfinity(Scaled, Y);
    std::vector<const Term *> Disjuncts;
    for (int64_t J = 1; J <= D; ++J) {
      const Term *JTerm = C.intConst(J);
      Disjuncts.push_back(substitute(C, FMinusInf, Y, JTerm));
      for (const Term *B : BSet)
        Disjuncts.push_back(substitute(C, Scaled, Y, C.add(B, JTerm)));
    }
    return simplify(C, C.or_(std::move(Disjuncts)));
  }

  /// Collects |coefficient| lcm of X over all atoms; false on non-linear
  /// occurrence.
  bool scanCoefficients(const Term *F, const Term *X, int64_t &Delta) {
    if (F->kind() == TermKind::And || F->kind() == TermKind::Or) {
      for (const Term *Op : F->operands())
        if (!scanCoefficients(Op, X, Delta))
          return false;
      return true;
    }
    if (!occurs(F, X))
      return true;
    auto Atom = normalizeLinAtom(F);
    if (!Atom)
      return false; // X under a boolean atom we cannot scale
    int64_t Coeff = 0;
    for (const auto &[Key, KC] : Atom->L.Coeffs) {
      if (Key == X) {
        Coeff = KC;
      } else if (occurs(Key, X)) {
        return false; // X inside select index / ite: non-linear
      }
    }
    if (Coeff == 0)
      return false; // occurs() saw X but linearization lost it: be safe
    Delta = lcm64(Delta, Coeff);
    return true;
  }

  /// Rewrites atoms of F so that X is replaced by a unit-coefficient
  /// occurrence of Y (= Delta * X); equalities on X split into two Le atoms.
  const Term *rewriteAtoms(const Term *F, const Term *X, const Term *Y,
                           int64_t Delta) {
    if (F->kind() == TermKind::And || F->kind() == TermKind::Or) {
      std::vector<const Term *> Ops;
      Ops.reserve(F->numOperands());
      for (const Term *Op : F->operands()) {
        const Term *NewOp = rewriteAtoms(Op, X, Y, Delta);
        if (!NewOp)
          return nullptr;
        Ops.push_back(NewOp);
      }
      return F->kind() == TermKind::And ? C.and_(std::move(Ops))
                                        : C.or_(std::move(Ops));
    }
    if (!occurs(F, X))
      return F;
    auto Atom = normalizeLinAtom(F);
    assert(Atom && "scanCoefficients accepted this atom");
    int64_t A = Atom->L.coeff(X);
    assert(A != 0);
    int64_t S = Delta / std::llabs(A); // scale factor, positive
    // Rest = S * (L - A*X); the scaled atom is  sign(A)*Y + Rest (op) 0.
    LinearTerm Rest = Atom->L;
    Rest.Coeffs.erase(X);
    Rest.scale(S);
    int Sign = A > 0 ? 1 : -1;

    switch (Atom->Kind) {
    case LinAtomKind::Le: {
      LinearTerm L = Rest;
      L.addAtom(Y, Sign);
      LinAtom NewAtom{LinAtomKind::Le, std::move(L), 1};
      return buildRawAtom(NewAtom);
    }
    case LinAtomKind::Eq: {
      // Split into <= and >=.
      LinearTerm L1 = Rest;
      L1.addAtom(Y, Sign);
      LinearTerm L2 = L1.negated();
      LinAtom A1{LinAtomKind::Le, std::move(L1), 1};
      LinAtom A2{LinAtomKind::Le, std::move(L2), 1};
      return C.and_(buildRawAtom(A1), buildRawAtom(A2));
    }
    case LinAtomKind::Dvd:
    case LinAtomKind::NDvd: {
      // d | (A*X + rest)  <=>  (S*d) | (sign*Y + S*rest); then normalize the
      // sign by negating the argument if needed.
      LinearTerm L = Rest;
      L.addAtom(Y, Sign);
      if (Sign < 0)
        L.scale(-1); // d | u <=> d | -u
      LinAtom NewAtom{Atom->Kind, std::move(L), Atom->Divisor * S};
      return buildRawAtom(NewAtom);
    }
    }
    return nullptr;
  }

  /// Builds an atom term WITHOUT gcd re-tightening (which would break the
  /// unit-coefficient invariant on Y).
  const Term *buildRawAtom(const LinAtom &A) {
    const Term *L = A.L.toTerm(C);
    switch (A.Kind) {
    case LinAtomKind::Le:
      return C.le(L, C.getZero());
    case LinAtomKind::Eq:
      return C.eq(L, C.getZero());
    case LinAtomKind::Dvd:
      return C.divides(A.Divisor, L);
    case LinAtomKind::NDvd:
      return C.not_(C.divides(A.Divisor, L));
    }
    return nullptr;
  }

  /// Gathers divisor lcm and lower-bound terms (B-set) from the scaled
  /// formula; every atom has unit coefficient on Y.
  void collectCooperData(const Term *F, const Term *Y, int64_t &D,
                         std::vector<const Term *> &BSet) {
    if (F->kind() == TermKind::And || F->kind() == TermKind::Or) {
      for (const Term *Op : F->operands())
        collectCooperData(Op, Y, D, BSet);
      return;
    }
    if (!occurs(F, Y))
      return;
    auto Atom = normalizeLinAtom(F);
    assert(Atom);
    int64_t A = Atom->L.coeff(Y);
    // normalizeLinAtom may reduce Dvd coefficients mod the divisor; Y's
    // coefficient stays ±1 because divisors exceed 1.
    if (Atom->Kind == LinAtomKind::Dvd || Atom->Kind == LinAtomKind::NDvd) {
      D = lcm64(D, Atom->Divisor);
      return;
    }
    assert(Atom->Kind == LinAtomKind::Le && (A == 1 || A == -1));
    if (A == -1) {
      // -Y + rest <= 0  i.e.  Y >= rest: a NON-strict lower bound. Cooper's
      // B-set wants strict bounds b < Y, so b = rest - 1.
      LinearTerm Rest = Atom->L;
      Rest.Coeffs.erase(Y);
      Rest.Constant -= 1;
      BSet.push_back(Rest.toTerm(C));
    }
  }

  /// Builds F with Y -> -infinity: upper-bound atoms become true, lower
  /// bounds become false, divisibility atoms survive.
  const Term *buildMinusInfinity(const Term *F, const Term *Y) {
    if (F->kind() == TermKind::And || F->kind() == TermKind::Or) {
      std::vector<const Term *> Ops;
      Ops.reserve(F->numOperands());
      for (const Term *Op : F->operands())
        Ops.push_back(buildMinusInfinity(Op, Y));
      return F->kind() == TermKind::And ? C.and_(std::move(Ops))
                                        : C.or_(std::move(Ops));
    }
    if (!occurs(F, Y))
      return F;
    auto Atom = normalizeLinAtom(F);
    assert(Atom);
    if (Atom->Kind == LinAtomKind::Dvd || Atom->Kind == LinAtomKind::NDvd)
      return F;
    return Atom->L.coeff(Y) > 0 ? C.getTrue() : C.getFalse();
  }

  TermContext &C;
  const QeConfig &Cfg;
};

} // namespace

std::optional<const Term *> qe::eliminateExists(TermContext &C, const Term *F,
                                                const Term *Var,
                                                const QeConfig &Cfg) {
  return CooperEliminator(C, Cfg).elimExists(F, Var);
}

std::optional<const Term *> qe::eliminateForall(TermContext &C, const Term *F,
                                                const Term *Var,
                                                const QeConfig &Cfg) {
  auto Inner = eliminateExists(C, C.not_(F), Var, Cfg);
  if (!Inner)
    return std::nullopt;
  return simplify(C, C.not_(*Inner));
}

std::optional<const Term *>
qe::eliminateExists(TermContext &C, const Term *F,
                    const std::vector<const Term *> &Vars,
                    const QeConfig &Cfg) {
  const Term *Cur = F;
  for (const Term *V : Vars) {
    auto Next = eliminateExists(C, Cur, V, Cfg);
    if (!Next)
      return std::nullopt;
    Cur = *Next;
  }
  return Cur;
}

std::optional<const Term *>
qe::eliminateForall(TermContext &C, const Term *F,
                    const std::vector<const Term *> &Vars,
                    const QeConfig &Cfg) {
  const Term *Cur = F;
  for (const Term *V : Vars) {
    auto Next = eliminateForall(C, Cur, V, Cfg);
    if (!Next)
      return std::nullopt;
    Cur = *Next;
  }
  return Cur;
}

std::optional<bool> qe::decideSat(TermContext &C, const Term *F,
                                  const QeConfig &Cfg) {
  std::vector<const Term *> Vars = freeVars(F);
  for (const Term *V : Vars)
    if (V->sort() == Sort::IntArray || V->sort() == Sort::BoolArray)
      return std::nullopt; // arrays are outside the decidable fragment here
  auto Ground = eliminateExists(C, F, Vars, Cfg);
  if (!Ground)
    return std::nullopt;
  const Term *G = simplify(C, *Ground);
  if (G->isTrue())
    return true;
  if (G->isFalse())
    return false;
  // Ground but unsimplified residue (e.g. constant divisibility chains):
  // evaluate directly.
  if (freeVars(G).empty())
    return evaluateBool(G, {});
  return std::nullopt;
}
