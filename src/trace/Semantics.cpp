//===- trace/Semantics.cpp - §3 monitor trace semantics -------------------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//

#include "trace/Semantics.h"

#include <algorithm>
#include <cassert>
#include <sstream>

using namespace expresso;
using namespace expresso::trace;
using namespace expresso::frontend;
using logic::Assignment;

namespace {

/// Guard evaluation for thread t in state σ: (σ, t) |= Guard(w).
bool guardHolds(const MonitorState &S, const Event &E) {
  Assignment Locals;
  auto It = S.Locals.find(E.Thread);
  if (It != S.Locals.end())
    Locals = It->second;
  Assignment Shared = S.Shared;
  Env En{&Shared, &Locals};
  return evalExpr(E.W->Guard, En).asBool();
}

/// ⟨Body(w), t, σ⟩ ⇓ σ'.
MonitorState execBody(const MonitorState &S, const Event &E) {
  MonitorState Out = S;
  Assignment &Locals = Out.Locals[E.Thread];
  Env En{&Out.Shared, &Locals};
  execStmt(E.W->Body, En);
  return Out;
}

/// Guard truth of a *blocked* event id under a state.
bool blockedGuardHolds(const MonitorState &S, const EventId &Id) {
  Event E;
  E.Thread = Id.first;
  E.W = Id.second;
  return guardHolds(S, E);
}

/// The paper's total order ≺ on events: (thread, ccr id) lexicographic.
bool eventLess(const EventId &A, const EventId &B) {
  if (A.first != B.first)
    return A.first < B.first;
  return A.second->Id < B.second->Id;
}

std::optional<EventId> minOf(const std::set<EventId> &N) {
  std::optional<EventId> Best;
  for (const EventId &E : N)
    if (!Best || eventLess(E, *Best))
      Best = E;
  return Best;
}

/// GetSignals/GetBroadcasts (Figure 6) — selects which blocked events the
/// explicit system notifies after executing \p E with final state σ'.
std::set<EventId> explicitNotifications(const SemaInfo &Sema,
                                        const runtime::SignalPlan &Plan,
                                        const Event &E,
                                        const MonitorState &After,
                                        const std::set<EventId> &Blocked) {
  std::set<EventId> Out;
  const auto *Entries = Plan.entriesFor(E.W);
  std::vector<runtime::PlanEntry> Work;
  if (Entries)
    Work = *Entries;
  // Lazy-broadcast chains behave like an extra conditional signal on the
  // executing CCR's own class; for the abstract semantics we use the eager
  // reading of broadcasts (the chain is an implementation strategy), so no
  // extra entries here.
  for (const runtime::PlanEntry &PE : Work) {
    // Events(B, p): blocked events whose guard belongs to the class.
    std::vector<EventId> Members;
    for (const EventId &B : Blocked)
      if (Sema.info(B.second).Class == PE.Target)
        Members.push_back(B);
    std::sort(Members.begin(), Members.end(), eventLess);
    if (PE.Broadcast) {
      // GetBroadcasts: every member passing the condition check.
      for (const EventId &B : Members)
        if (!PE.Conditional || blockedGuardHolds(After, B))
          Out.insert(B);
    } else if (!Members.empty()) {
      // GetSignals: exactly min(Events(B, p)), kept only if the condition
      // holds for that event (Figure 6, verbatim).
      const EventId &Min = Members.front();
      if (!PE.Conditional || blockedGuardHolds(After, Min))
        Out.insert(Min);
    }
  }
  return Out;
}

} // namespace

bool trace::isWellFormed(const std::vector<ThreadTask> &Tasks,
                         const Trace &T) {
  // Requirement (a)+(b) via per-thread projection: fired events must follow
  // the method's CCR order; a blocked event must repeat the thread's
  // current CCR.
  std::map<unsigned, size_t> Pos;
  std::map<unsigned, const ThreadTask *> TaskOf;
  for (const ThreadTask &Task : Tasks)
    TaskOf[Task.Thread] = &Task;
  for (const Event &E : T) {
    auto It = TaskOf.find(E.Thread);
    if (It == TaskOf.end())
      return false;
    const Method *M = It->second->M;
    size_t &P = Pos[E.Thread];
    if (P >= M->Body.size())
      return false; // thread already finished its method
    if (E.W != &M->Body[P])
      return false; // out-of-order CCR
    if (E.Fired)
      ++P;
  }
  // Requirement (c): a thread leaves the monitor only by blocking or by
  // finishing its method. Consecutive events by the same thread inside a
  // method are adjacent: if τ[i] = (t, w, true) and w is not the last CCR
  // of t's method, then τ[i+1] must be by t.
  for (size_t I = 0; I + 1 < T.size(); ++I) {
    const Event &E = T[I];
    if (!E.Fired)
      continue;
    const Method *M = TaskOf[E.Thread]->M;
    bool IsLast = (E.W == &M->Body.back());
    if (!IsLast && T[I + 1].Thread != E.Thread)
      return false;
  }
  // Note: a trace may END with a thread mid-method — Definition 10.2 allows
  // the projection to finish with a *prefix* of a method body. Requirement
  // (c) only constrains mid-trace hand-offs (the adjacency rule above).
  return true;
}

std::optional<Config> trace::stepImplicit(const SemaInfo &Sema,
                                          const Config &C, const Event &E) {
  (void)Sema;
  EventId Id{E.Thread, E.W};
  Config Out = C;
  if (!E.Fired) {
    // Rules (1a)/(1b): the guard must be false.
    if (guardHolds(C.State, E))
      return std::nullopt;
    if (!C.Blocked.count(Id)) {
      Out.Blocked.insert(Id); // (1a)
      return Out;
    }
    if (C.Notified.count(Id)) {
      Out.Notified.erase(Id); // (1b): spurious wakeup
      Out.UsedRule1b = true;
      return Out;
    }
    return std::nullopt;
  }
  // Rules (2a)/(2b): the guard must be true.
  if (!guardHolds(C.State, E))
    return std::nullopt;
  bool InB = C.Blocked.count(Id) != 0;
  if (InB) {
    // (2b): must be the minimum of N.
    auto Min = minOf(C.Notified);
    if (!Min || *Min != Id)
      return std::nullopt;
  }
  MonitorState After = execBody(C.State, E);
  Out.State = After;
  // N' = all blocked events whose predicates now hold.
  std::set<EventId> NewlyTrue;
  for (const EventId &B : C.Blocked)
    if (blockedGuardHolds(After, B))
      NewlyTrue.insert(B);
  Out.Notified.insert(NewlyTrue.begin(), NewlyTrue.end());
  if (InB) {
    Out.Blocked.erase(Id);
    Out.Notified.erase(Id);
  }
  Out.Position[E.Thread] += 1;
  return Out;
}

std::optional<Config> trace::stepExplicit(const SemaInfo &Sema,
                                          const runtime::SignalPlan &Plan,
                                          const Config &C, const Event &E) {
  EventId Id{E.Thread, E.W};
  Config Out = C;
  if (!E.Fired) {
    if (guardHolds(C.State, E))
      return std::nullopt;
    if (!C.Blocked.count(Id)) {
      Out.Blocked.insert(Id);
      return Out;
    }
    if (C.Notified.count(Id)) {
      Out.Notified.erase(Id);
      Out.UsedRule1b = true;
      return Out;
    }
    return std::nullopt;
  }
  if (!guardHolds(C.State, E))
    return std::nullopt;
  bool InB = C.Blocked.count(Id) != 0;
  if (InB) {
    auto Min = minOf(C.Notified);
    if (!Min || *Min != Id)
      return std::nullopt;
  }
  MonitorState After = execBody(C.State, E);
  Out.State = After;
  std::set<EventId> N12 =
      explicitNotifications(Sema, Plan, E, After, C.Blocked);
  Out.Notified.insert(N12.begin(), N12.end());
  if (InB) {
    Out.Blocked.erase(Id);
    Out.Notified.erase(Id);
  }
  Out.Position[E.Thread] += 1;
  return Out;
}

std::optional<Config> trace::replay(const SemaInfo &Sema,
                                    const runtime::SignalPlan *Plan,
                                    const std::vector<ThreadTask> &Tasks,
                                    const MonitorState &Initial,
                                    const Trace &T) {
  if (!isWellFormed(Tasks, T))
    return std::nullopt;
  Config C;
  C.State = Initial;
  for (const ThreadTask &Task : Tasks)
    C.State.Locals[Task.Thread] = Task.Locals;
  for (const Event &E : T) {
    std::optional<Config> Next =
        Plan ? stepExplicit(Sema, *Plan, C, E) : stepImplicit(Sema, C, E);
    if (!Next)
      return std::nullopt;
    C = std::move(*Next);
  }
  return C;
}

std::string trace::printTrace(const Trace &T) {
  std::ostringstream OS;
  OS << "[";
  for (size_t I = 0; I < T.size(); ++I) {
    if (I)
      OS << ", ";
    OS << "(t" << T[I].Thread << ", w" << T[I].W->Id << ", "
       << (T[I].Fired ? "true" : "false") << ")";
  }
  OS << "]";
  return OS.str();
}

namespace {

/// DFS enumeration of feasible traces of one system, invoking a callback at
/// every node (trace prefix).
template <typename StepFn, typename VisitFn>
void enumerate(const std::vector<ThreadTask> &Tasks, const Config &C,
               Trace &Prefix, size_t MaxEvents, bool ForbidRule1b,
               const StepFn &Step, const VisitFn &Visit) {
  if (!Visit(Prefix, C))
    return; // visitor requests cutoff (e.g., counterexample found)
  if (Prefix.size() >= MaxEvents)
    return;
  for (const ThreadTask &Task : Tasks) {
    size_t Pos = C.Position.count(Task.Thread)
                     ? C.Position.at(Task.Thread)
                     : 0;
    if (Pos >= Task.M->Body.size())
      continue;
    // Well-formedness rule (c): if the previous event fired a non-final
    // CCR of its method, only that thread may move.
    if (!Prefix.empty()) {
      const Event &Last = Prefix.back();
      if (Last.Fired) {
        const Method *LastM = nullptr;
        for (const ThreadTask &T2 : Tasks)
          if (T2.Thread == Last.Thread)
            LastM = T2.M;
        if (LastM && Last.W != &LastM->Body.back() &&
            Last.Thread != Task.Thread)
          continue;
      }
    }
    const WaitUntil *W = &Task.M->Body[Pos];
    for (bool Fired : {true, false}) {
      Event E{Task.Thread, W, Fired};
      std::optional<Config> Next = Step(C, E);
      if (!Next)
        continue;
      if (ForbidRule1b && Next->UsedRule1b)
        continue;
      Prefix.push_back(E);
      enumerate(Tasks, *Next, Prefix, MaxEvents, ForbidRule1b, Step, Visit);
      Prefix.pop_back();
    }
  }
}

Config initialConfig(const std::vector<ThreadTask> &Tasks,
                     const MonitorState &Initial) {
  Config C;
  C.State = Initial;
  for (const ThreadTask &Task : Tasks) {
    C.State.Locals[Task.Thread] = Task.Locals;
    C.Position[Task.Thread] = 0;
  }
  return C;
}

} // namespace

EquivalenceResult trace::checkEquivalenceBounded(
    const SemaInfo &Sema, const runtime::SignalPlan &Plan,
    const std::vector<ThreadTask> &Tasks, const MonitorState &Initial,
    size_t MaxEvents) {
  EquivalenceResult Result;
  Config C0 = initialConfig(Tasks, Initial);

  // Condition (1): explicit-feasible => implicit-feasible, same final σ.
  {
    Trace Prefix;
    auto Step = [&](const Config &C, const Event &E) {
      return stepExplicit(Sema, Plan, C, E);
    };
    auto Visit = [&](const Trace &T, const Config &C) {
      ++Result.TracesChecked;
      std::optional<Config> Imp = replay(Sema, nullptr, Tasks, Initial, T);
      if (!Imp || !Imp->State.sharedEquals(C.State)) {
        Result.Equivalent = false;
        Result.CounterExample =
            "explicit-feasible trace not implicit-feasible (Def 3.4(1)): " +
            printTrace(T);
        return false;
      }
      return true;
    };
    enumerate(Tasks, C0, Prefix, MaxEvents, /*ForbidRule1b=*/false, Step,
              Visit);
    if (!Result.Equivalent)
      return Result;
  }

  // Condition (2): normalized implicit-feasible => explicit-feasible.
  {
    Trace Prefix;
    auto Step = [&](const Config &C, const Event &E) {
      return stepImplicit(Sema, C, E);
    };
    auto Visit = [&](const Trace &T, const Config &C) {
      ++Result.TracesChecked;
      std::optional<Config> Exp = replay(Sema, &Plan, Tasks, Initial, T);
      if (!Exp || !Exp->State.sharedEquals(C.State)) {
        Result.Equivalent = false;
        Result.CounterExample =
            "normalized implicit trace not explicit-feasible (Def 3.4(2)): " +
            printTrace(T);
        return false;
      }
      return true;
    };
    enumerate(Tasks, C0, Prefix, MaxEvents, /*ForbidRule1b=*/true, Step,
              Visit);
  }
  return Result;
}
