//===- trace/Semantics.h - §3 monitor trace semantics -----------*- C++ -*-===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executable form of the paper's Section 3 formalization:
///
///   * monitor traces: sequences of events (t, w, b) where b records
///     whether thread t executed waituntil w or blocked on it;
///   * syntactic well-formedness (Appendix A): per-thread projections
///     follow method structure, and rule (c) — a thread leaves the monitor
///     only by blocking or finishing;
///   * the implicit-signal transition relation --> (Figure 4);
///   * the explicit-signal transition relation ==> (Figures 5 and 6), which
///     consults Signals(w)/Broadcasts(w) from a placement;
///   * normalized traces (Definition 3.3): derivations that never use the
///     spurious-wakeup rule (1b);
///   * a bounded checker for Definition 3.4 equivalence, used by the
///     property-test suite to validate PlaceSignals output against the
///     source monitor on exhaustively enumerated small traces.
///
//===----------------------------------------------------------------------===//

#ifndef EXPRESSO_TRACE_SEMANTICS_H
#define EXPRESSO_TRACE_SEMANTICS_H

#include "frontend/Interp.h"
#include "frontend/Sema.h"
#include "runtime/SignalPlan.h"

#include <optional>
#include <set>
#include <string>
#include <vector>

namespace expresso {
namespace trace {

/// A monitor event (t, w, b).
struct Event {
  unsigned Thread = 0;
  const frontend::WaitUntil *W = nullptr;
  bool Fired = false; ///< true: executed; false: blocked on the guard

  bool operator==(const Event &O) const = default;
};

using Trace = std::vector<Event>;

/// The pair (t, w) — the paper's e-bar.
using EventId = std::pair<unsigned, const frontend::WaitUntil *>;

/// A monitor state σ: shared variables plus per-thread locals.
struct MonitorState {
  logic::Assignment Shared;
  std::map<unsigned, logic::Assignment> Locals;

  bool sharedEquals(const MonitorState &O) const { return Shared == O.Shared; }
};

/// One thread's workload for trace enumeration: a single method invocation
/// with fixed arguments.
struct ThreadTask {
  unsigned Thread = 0;
  const frontend::Method *M = nullptr;
  logic::Assignment Locals;
};

/// Configuration of either transition system: (σ, B, N) plus per-thread
/// progress through its method.
struct Config {
  MonitorState State;
  std::set<EventId> Blocked;  ///< B
  std::set<EventId> Notified; ///< N
  std::map<unsigned, size_t> Position; ///< next CCR index per thread
  bool UsedRule1b = false;    ///< true if a derivation step used rule (1b)
};

/// Returns true if \p T is syntactically well-formed for the given thread
/// tasks (Appendix A, Definitions 10.1-10.3).
bool isWellFormed(const std::vector<ThreadTask> &Tasks, const Trace &T);

/// Applies one implicit-signal step (Figure 4). Returns nullopt when no
/// rule applies (the event is infeasible in this configuration).
std::optional<Config> stepImplicit(const frontend::SemaInfo &Sema,
                                   const Config &C, const Event &E);

/// Applies one explicit-signal step (Figures 5-6) for signal sets \p Plan.
std::optional<Config> stepExplicit(const frontend::SemaInfo &Sema,
                                   const runtime::SignalPlan &Plan,
                                   const Config &C, const Event &E);

/// Replays a whole trace under the implicit (Plan == nullptr) or explicit
/// relation. Returns the final configuration or nullopt if infeasible.
std::optional<Config> replay(const frontend::SemaInfo &Sema,
                             const runtime::SignalPlan *Plan,
                             const std::vector<ThreadTask> &Tasks,
                             const MonitorState &Initial, const Trace &T);

/// Result of the bounded Definition-3.4 check.
struct EquivalenceResult {
  bool Equivalent = true;
  std::string CounterExample; ///< human-readable failing trace, if any
  size_t TracesChecked = 0;
};

/// Bounded equivalence (Definition 3.4): enumerates every feasible trace of
/// both systems up to \p MaxEvents events and checks
///   (1) explicit-feasible  =>  implicit-feasible with the same final σ;
///   (2) normalized implicit-feasible  =>  explicit-feasible, same final σ.
EquivalenceResult checkEquivalenceBounded(const frontend::SemaInfo &Sema,
                                          const runtime::SignalPlan &Plan,
                                          const std::vector<ThreadTask> &Tasks,
                                          const MonitorState &Initial,
                                          size_t MaxEvents);

/// Renders a trace for diagnostics.
std::string printTrace(const Trace &T);

} // namespace trace
} // namespace expresso

#endif // EXPRESSO_TRACE_SEMANTICS_H
