//===- bench/table1_analysis_time.cpp ------------------------------------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
// Regenerates Table 1: wall-clock time for the full static pipeline
// (parse -> sema -> invariant inference -> signal placement) per benchmark.
//
//===----------------------------------------------------------------------===//

#include "bench/Harness.h"

int main(int argc, char **argv) {
  return expresso::bench::tableMain(argc, argv);
}
