//===- bench/ablation_commutativity.cpp ----------------------------------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
// Ablation: the §4.3 commutativity weakening (Equation 2). Counts how many
// broadcasts each benchmark needs with and without it — ConcurrencyThrottle
// is the paper's flagship case ("symbolic reasoning has to ... establish
// that the operations commute").
//
//===----------------------------------------------------------------------===//

#include "bench/Workloads.h"
#include "core/SignalPlacement.h"
#include "frontend/Parser.h"
#include "solver/CachingSolver.h"

#include <cstdio>

using namespace expresso;

int main() {
  std::printf("# Ablation: §4.3 commutativity weakening on vs off\n");
  std::printf("# 2nd-run hit%% shows the shared query cache reusing the 1st "
              "run's identical no-signal/unconditional VCs\n");
  std::printf("%-28s %18s %18s %14s %14s\n", "benchmark",
              "bcasts (with §4.3)", "bcasts (without)", "§4.3 wins",
              "2nd-run hit%");
  for (const bench::BenchmarkDef &Def : bench::allBenchmarks()) {
    logic::TermContext C;
    DiagnosticEngine Diags;
    auto M = frontend::parseMonitor(Def.Source, Diags);
    auto Sema = frontend::analyze(*M, C, Diags);
    if (!Sema)
      return 1;
    // One memo table spans both placements: the no-signal and
    // unconditional checks are identical with and without §4.3.
    auto Solver = solver::CachingSolver::create(
        C, solver::createSolver(solver::SolverKind::Default, C));
    core::PlacementOptions WithOpts;
    core::PlacementResult With = core::placeSignals(C, *Sema, *Solver, WithOpts);
    core::PlacementOptions WithoutOpts;
    WithoutOpts.UseCommutativity = false;
    core::PlacementResult Without =
        core::placeSignals(C, *Sema, *Solver, WithoutOpts);
    std::printf("%-28s %18zu %18zu %14zu %13.0f%%\n", Def.Name.c_str(),
                With.Stats.Broadcasts, Without.Stats.Broadcasts,
                With.Stats.CommutativityWins,
                Without.Stats.Cache.hitRate() * 100);
    std::fflush(stdout);
  }
  return 0;
}
