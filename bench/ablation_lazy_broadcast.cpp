//===- bench/ablation_lazy_broadcast.cpp ---------------------------------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
// Ablation: the §6 lazy-broadcast option ("enabled by default to minimize
// context switches"). Measures ms/op for eager signalAll vs chained wakes
// on the broadcast-heavy benchmarks.
//
//===----------------------------------------------------------------------===//

#include "bench/Harness.h"

#include <cstdio>

using namespace expresso;
using namespace expresso::bench;

int main(int argc, char **argv) {
  HarnessOptions Opts = HarnessOptions::fromArgs(argc, argv);
  if (!Opts.MaxThreads)
    Opts.MaxThreads = 64; // keep the ablation quick
  const char *Names[] = {"ReadersWriters", "DiningPhilosophers",
                         "ParamBoundedBuffer"};
  std::printf("# Ablation: §6 lazy broadcast on vs off (expresso plan)\n");
  std::printf("%-22s %-8s %14s %14s\n", "benchmark", "threads",
              "lazy ms/op", "eager ms/op");
  for (const char *Name : Names) {
    const BenchmarkDef *Def = findBenchmark(Name);
    if (!Def)
      return 1;
    HarnessOptions Lazy = Opts;
    Lazy.Placement.LazyBroadcast = true;
    HarnessOptions Eager = Opts;
    Eager.Placement.LazyBroadcast = false;
    BenchContext LazyCtx(*Def, Lazy.Placement);
    BenchContext EagerCtx(*Def, Eager.Placement);
    for (unsigned Threads : Def->ThreadCounts) {
      if (Opts.MaxThreads && Threads > Opts.MaxThreads)
        continue;
      CellResult L = runCell(*Def, LazyCtx, EngineKind::Expresso, Threads, Lazy);
      CellResult E =
          runCell(*Def, EagerCtx, EngineKind::Expresso, Threads, Eager);
      std::printf("%-22s %-8u %14.5f %14.5f\n", Name, Threads, L.MsPerOp,
                  E.MsPerOp);
      std::fflush(stdout);
    }
  }
  return 0;
}
