//===- bench/ablation_solver_backend.cpp ---------------------------------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
// Ablation: solver backend. The paper invokes Z3; this repo also ships the
// from-scratch MiniSmt solver. Compares full-pipeline analysis time per
// benchmark for each backend and asserts they produce identical placement
// decisions.
//
//===----------------------------------------------------------------------===//

#include "bench/Workloads.h"
#include "core/SignalPlacement.h"
#include "frontend/Parser.h"
#include "support/Timer.h"

#include <cstdio>
#include <cstdlib>

using namespace expresso;

namespace {

struct Run {
  double Seconds = 0;
  size_t Signals = 0;
  size_t Broadcasts = 0;
  size_t NoSignal = 0;
  double CacheHitRate = 0;
  bool Supported = true;
};

Run runWith(const bench::BenchmarkDef &Def, solver::SolverKind Kind,
            bool Cache) {
  Run R;
  logic::TermContext C;
  DiagnosticEngine Diags;
  auto M = frontend::parseMonitor(Def.Source, Diags);
  auto Sema = frontend::analyze(*M, C, Diags);
  auto Solver = solver::createSolver(Kind, C);
  if (!Solver) {
    R.Supported = false;
    return R;
  }
  core::PlacementOptions Opts;
  Opts.CacheQueries = Cache;
  WallTimer T;
  core::PlacementResult P = core::placeSignals(C, *Sema, *Solver, Opts);
  R.Seconds = T.elapsedSeconds();
  R.Signals = P.Stats.Signals;
  R.Broadcasts = P.Stats.Broadcasts;
  R.NoSignal = P.Stats.NoSignalProved;
  R.CacheHitRate = P.Stats.Cache.hitRate();
  return R;
}

} // namespace

int main() {
  std::printf("# Ablation: solver backend (Z3 vs from-scratch MiniSmt), with "
              "and without the query cache\n");
  std::printf("%-28s %10s %10s %6s %10s %10s %6s %8s\n", "benchmark",
              "z3 (s)", "z3+$ (s)", "hit%", "mini (s)", "mini+$ (s)", "hit%",
              "agree?");
  for (const bench::BenchmarkDef &Def : bench::allBenchmarks()) {
    Run Z3 = runWith(Def, solver::SolverKind::Z3, /*Cache=*/false);
    Run Z3C = runWith(Def, solver::SolverKind::Z3, /*Cache=*/true);
    Run Mini = runWith(Def, solver::SolverKind::Mini, /*Cache=*/false);
    Run MiniC = runWith(Def, solver::SolverKind::Mini, /*Cache=*/true);
    bool Agree = !Z3.Supported ||
                 (Z3.Signals == Mini.Signals &&
                  Z3.Broadcasts == Mini.Broadcasts &&
                  Z3.NoSignal == Mini.NoSignal);
    if (Z3.Supported) {
      std::printf("%-28s %10.2f %10.2f %5.0f%% %10.2f %10.2f %5.0f%% %8s\n",
                  Def.Name.c_str(), Z3.Seconds, Z3C.Seconds,
                  Z3C.CacheHitRate * 100, Mini.Seconds, MiniC.Seconds,
                  MiniC.CacheHitRate * 100, Agree ? "yes" : "NO");
    } else {
      std::printf("%-28s %10s %10s %6s %10.2f %10.2f %5.0f%% %8s\n",
                  Def.Name.c_str(), "n/a", "n/a", "-", Mini.Seconds,
                  MiniC.Seconds, MiniC.CacheHitRate * 100, "-");
    }
    std::fflush(stdout);
    if (!Agree) {
      std::fprintf(stderr, "backend disagreement on %s\n", Def.Name.c_str());
      return 1;
    }
  }
  return 0;
}
