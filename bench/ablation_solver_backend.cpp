//===- bench/ablation_solver_backend.cpp ---------------------------------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
// Ablation: solver backend. The paper invokes Z3; this repo also ships the
// from-scratch MiniSmt solver. Compares full-pipeline analysis time per
// benchmark for each backend and asserts they produce identical placement
// decisions.
//
//===----------------------------------------------------------------------===//

#include "bench/Workloads.h"
#include "core/SignalPlacement.h"
#include "frontend/Parser.h"
#include "support/Timer.h"

#include <cstdio>
#include <cstdlib>

using namespace expresso;

namespace {

struct Run {
  double Seconds = 0;
  size_t Signals = 0;
  size_t Broadcasts = 0;
  size_t NoSignal = 0;
  bool Supported = true;
};

Run runWith(const bench::BenchmarkDef &Def, solver::SolverKind Kind) {
  Run R;
  logic::TermContext C;
  DiagnosticEngine Diags;
  auto M = frontend::parseMonitor(Def.Source, Diags);
  auto Sema = frontend::analyze(*M, C, Diags);
  auto Solver = solver::createSolver(Kind, C);
  if (!Solver) {
    R.Supported = false;
    return R;
  }
  WallTimer T;
  core::PlacementResult P = core::placeSignals(C, *Sema, *Solver);
  R.Seconds = T.elapsedSeconds();
  R.Signals = P.Stats.Signals;
  R.Broadcasts = P.Stats.Broadcasts;
  R.NoSignal = P.Stats.NoSignalProved;
  return R;
}

} // namespace

int main() {
  std::printf("# Ablation: solver backend (Z3 vs from-scratch MiniSmt)\n");
  std::printf("%-28s %12s %12s %10s\n", "benchmark", "z3 (s)", "mini (s)",
              "agree?");
  for (const bench::BenchmarkDef &Def : bench::allBenchmarks()) {
    Run Z3 = runWith(Def, solver::SolverKind::Z3);
    Run Mini = runWith(Def, solver::SolverKind::Mini);
    bool Agree = !Z3.Supported ||
                 (Z3.Signals == Mini.Signals &&
                  Z3.Broadcasts == Mini.Broadcasts &&
                  Z3.NoSignal == Mini.NoSignal);
    if (Z3.Supported) {
      std::printf("%-28s %12.2f %12.2f %10s\n", Def.Name.c_str(), Z3.Seconds,
                  Mini.Seconds, Agree ? "yes" : "NO");
    } else {
      std::printf("%-28s %12s %12.2f %10s\n", Def.Name.c_str(), "n/a",
                  Mini.Seconds, "-");
    }
    std::fflush(stdout);
    if (!Agree) {
      std::fprintf(stderr, "backend disagreement on %s\n", Def.Name.c_str());
      return 1;
    }
  }
  return 0;
}
