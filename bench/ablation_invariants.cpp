//===- bench/ablation_invariants.cpp -------------------------------------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
// Ablation: how much does the Algorithm-2 monitor invariant buy? For every
// benchmark, compares the static placement quality (pairs proved
// signal-free, unconditional signals, broadcasts) with the inferred
// invariant versus I = true.
//
//===----------------------------------------------------------------------===//

#include "bench/Workloads.h"
#include "core/SignalPlacement.h"
#include "frontend/Parser.h"
#include "logic/Printer.h"
#include "solver/CachingSolver.h"

#include <cstdio>
#include <cstdlib>

using namespace expresso;

namespace {

core::PlacementResult
place(logic::TermContext &C, const frontend::SemaInfo &Sema,
      solver::SmtSolver &Solver, bool UseInvariant) {
  core::PlacementOptions Opts;
  Opts.UseInvariant = UseInvariant;
  return core::placeSignals(C, Sema, Solver, Opts);
}

} // namespace

int main() {
  std::printf("# Ablation: monitor invariants (Algorithm 2) on vs off\n");
  std::printf("# columns: no-signal pairs proved / unconditional signals / "
              "broadcasts\n");
  std::printf("%-28s | %21s | %21s | %9s\n", "benchmark", "with invariant",
              "I = true", "cache hit%");
  for (const bench::BenchmarkDef &Def : bench::allBenchmarks()) {
    logic::TermContext C;
    DiagnosticEngine Diags;
    auto M = frontend::parseMonitor(Def.Source, Diags);
    auto Sema = frontend::analyze(*M, C, Diags);
    if (!Sema) {
      std::fprintf(stderr, "sema failed for %s\n", Def.Name.c_str());
      return 1;
    }
    // Share one memo table across both placements so the second run reuses
    // every VC the two configurations have in common.
    auto Solver = solver::CachingSolver::create(
        C, solver::createSolver(solver::SolverKind::Default, C));
    core::PlacementResult With = place(C, *Sema, *Solver, true);
    core::PlacementResult Without = place(C, *Sema, *Solver, false);
    uint64_t Hits = With.Stats.Cache.Hits + Without.Stats.Cache.Hits;
    uint64_t Lookups =
        Hits + With.Stats.Cache.Misses + Without.Stats.Cache.Misses;
    std::printf("%-28s | %6zu %6zu %6zu | %6zu %6zu %6zu | %8.0f%%\n",
                Def.Name.c_str(), With.Stats.NoSignalProved,
                With.Stats.Unconditional, With.Stats.Broadcasts,
                Without.Stats.NoSignalProved, Without.Stats.Unconditional,
                Without.Stats.Broadcasts,
                Lookups ? 100.0 * Hits / Lookups : 0.0);
    std::fflush(stdout);
  }
  return 0;
}
