//===- bench/ablation_persistent_cache.cpp -------------------------------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
// Ablation: the persistent query store. Per benchmark, runs the analysis
// cold (fresh cache directory), then warm in a *fresh TermContext against a
// reopened store* — the in-process stand-in for a second process pointed at
// the same --cache-dir — and finally against a deliberately corrupted log.
// Reports the cold/warm speedup and persistent-tier hit rate, and fails if
// any warm or corrupted-cache run's decisions diverge from the cold run's
// (the store must accelerate, never alter, Σ).
//
//===----------------------------------------------------------------------===//

#include "bench/Workloads.h"
#include "core/SignalPlacement.h"
#include "frontend/Parser.h"
#include "persist/QueryStore.h"
#include "solver/CachingSolver.h"
#include "support/Timer.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#ifndef _WIN32
#include <unistd.h>
#endif

using namespace expresso;

namespace {

struct Run {
  double Seconds = 0;
  std::string Decisions;
  solver::CacheStats Cache;
};

/// One full analysis in a fresh TermContext, optionally backed by \p Store.
Run runWith(const bench::BenchmarkDef &Def,
            std::shared_ptr<persist::QueryStore> Store) {
  Run R;
  logic::TermContext C;
  DiagnosticEngine Diags;
  auto M = frontend::parseMonitor(Def.Source, Diags);
  auto Sema = frontend::analyze(*M, C, Diags);
  auto Cache = solver::CachingSolver::create(
      C, solver::createSolver(solver::SolverKind::Mini, C));
  if (Store)
    Cache->attachStore(std::move(Store));
  core::PlacementOptions Opts;
  WallTimer T;
  core::PlacementResult P = core::placeSignals(C, *Sema, *Cache, Opts);
  R.Seconds = T.elapsedSeconds();
  R.Decisions = P.decisionSummary();
  R.Cache = P.Stats.Cache;
  return R;
}

std::shared_ptr<persist::QueryStore> openStore(const std::string &Dir) {
  persist::QueryStore::Options Opts;
  Opts.Profile = "mini";
  return persist::QueryStore::open(Dir, Opts);
}

/// Flips one byte in the middle of the query log — past the header, so the
/// damage lands in a record and must be caught by the checksum.
void corruptLog(const std::string &Dir) {
  std::string Path = Dir + "/queries.log";
  auto Size = std::filesystem::file_size(Path);
  std::fstream F(Path, std::ios::in | std::ios::out | std::ios::binary);
  F.seekg(static_cast<std::streamoff>(Size / 2));
  char Ch = 0;
  F.get(Ch);
  F.seekp(static_cast<std::streamoff>(Size / 2));
  F.put(static_cast<char>(~Ch));
}

} // namespace

int main() {
  std::string Root =
      (std::filesystem::temp_directory_path() /
       ("expresso-ablation-pcache-" + std::to_string(::getpid())))
          .string();

  std::printf("# Ablation: persistent query store (MiniSmt backend, serial "
              "placement)\n");
  std::printf("# warm runs reopen the store in a fresh TermContext — the "
              "cross-process reuse path\n");
  std::printf("%-28s %9s %9s %8s %9s %9s %9s\n", "benchmark", "cold(s)",
              "warm(s)", "speedup", "diskhit%", "warm", "corrupt");

  int Exit = 0;
  for (const bench::BenchmarkDef &Def : bench::allBenchmarks()) {
    std::string Dir = Root + "/" + Def.Name;

    Run Cold = runWith(Def, openStore(Dir));
    // Reopen, so the warm run loads the log from disk exactly as a new
    // process would (the cold run's handle is gone, its index with it).
    Run Warm = runWith(Def, openStore(Dir));
    bool WarmOk = Warm.Decisions == Cold.Decisions;

    corruptLog(Dir);
    Run Corrupt = runWith(Def, openStore(Dir));
    bool CorruptOk = Corrupt.Decisions == Cold.Decisions;

    if (!WarmOk || !CorruptOk)
      Exit = 1;
    std::printf("%-28s %9.3f %9.3f %7.1fx %8.0f%% %9s %9s\n",
                Def.Name.c_str(), Cold.Seconds, Warm.Seconds,
                Cold.Seconds / std::max(1e-9, Warm.Seconds),
                Warm.Cache.diskHitRate() * 100, WarmOk ? "ok" : "MISMATCH",
                CorruptOk ? "ok" : "MISMATCH");
    std::fflush(stdout);
  }

  std::error_code Ec;
  std::filesystem::remove_all(Root, Ec);
  return Exit;
}
