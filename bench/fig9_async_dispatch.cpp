//===- bench/fig9_async_dispatch.cpp -----------------------------------------------------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
// Regenerates the AsyncDispatch series of the paper's evaluation:
// ms/op for Expresso-generated, AutoSynch-style, and hand-written explicit
// signaling across the paper's thread counts.
//
//===----------------------------------------------------------------------===//

#include "bench/Harness.h"

int main(int argc, char **argv) {
  return expresso::bench::figureMain("AsyncDispatch", argc, argv);
}
