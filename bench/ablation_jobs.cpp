//===- bench/ablation_jobs.cpp -------------------------------------------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
// Ablation: placement parallelism. Every (w, p) Hoare triple of Algorithm 1
// is an independent validity query, so the fan-out across CCR ×
// predicate-class pairs should scale with worker count while producing a
// bit-for-bit identical Σ. Sweeps --jobs over {1, 2, 4, 8} per benchmark,
// reports analysis-time speedup over the serial engine, and fails if any
// parallel run's decisions diverge from serial.
//
//===----------------------------------------------------------------------===//

#include "bench/Workloads.h"
#include "core/SignalPlacement.h"
#include "frontend/Parser.h"
#include "support/Timer.h"

#include <cstdio>
#include <cstring>
#include <string>

using namespace expresso;

namespace {

struct Run {
  double Seconds = 0;
  std::string Decisions;
  size_t CacheHits = 0;
  size_t CacheMisses = 0;
};

Run runWith(const bench::BenchmarkDef &Def, unsigned Jobs, bool Cache) {
  Run R;
  logic::TermContext C;
  DiagnosticEngine Diags;
  auto M = frontend::parseMonitor(Def.Source, Diags);
  auto Sema = frontend::analyze(*M, C, Diags);
  auto Solver = solver::createSolver(solver::SolverKind::Mini, C);
  core::PlacementOptions Opts;
  Opts.CacheQueries = Cache;
  Opts.Jobs = Jobs;
  Opts.WorkerSolvers = solver::SolverFactory(solver::SolverKind::Mini);
  WallTimer T;
  core::PlacementResult P = core::placeSignals(C, *Sema, *Solver, Opts);
  R.Seconds = T.elapsedSeconds();
  R.Decisions = P.decisionSummary();
  R.CacheHits = P.Stats.Cache.Hits;
  R.CacheMisses = P.Stats.Cache.Misses;
  return R;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Cache = true;
  std::string JsonPath;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--no-cache") == 0)
      Cache = false;
    else if (std::strncmp(Argv[I], "--json=", 7) == 0)
      JsonPath = Argv[I] + 7;
  }

  std::printf("# Ablation: placement jobs (MiniSmt backend, cache %s)\n",
              Cache ? "on" : "off");
  std::printf("# speedup columns are serial-time / N-jobs-time per benchmark\n");
  std::printf("%-28s %10s %8s %8s %8s %6s\n", "benchmark", "serial(s)",
              "x2", "x4", "x8", "match");

  std::FILE *Json = nullptr;
  if (!JsonPath.empty()) {
    Json = std::fopen(JsonPath.c_str(), "w");
    if (!Json) {
      std::fprintf(stderr, "cannot open %s for writing\n", JsonPath.c_str());
      return 1;
    }
    std::fprintf(Json,
                 "{\n  \"bench\": \"ablation_jobs\",\n  \"cache\": %s,\n"
                 "  \"results\": [",
                 Cache ? "true" : "false");
  }

  int Exit = 0;
  bool FirstRow = true;
  for (const bench::BenchmarkDef &Def : bench::allBenchmarks()) {
    Run Serial = runWith(Def, 1, Cache);
    bool Match = true;
    double Speedup[3] = {0, 0, 0};
    const unsigned JobCounts[3] = {2, 4, 8};
    for (int J = 0; J < 3; ++J) {
      Run Par = runWith(Def, JobCounts[J], Cache);
      Speedup[J] = Serial.Seconds / (Par.Seconds > 0 ? Par.Seconds : 1e-9);
      if (Par.Decisions != Serial.Decisions)
        Match = false;
      if (Cache && (Par.CacheHits != Serial.CacheHits ||
                    Par.CacheMisses != Serial.CacheMisses))
        Match = false;
    }
    if (!Match)
      Exit = 1;
    std::printf("%-28s %10.2f %7.2fx %7.2fx %7.2fx %6s\n", Def.Name.c_str(),
                Serial.Seconds, Speedup[0], Speedup[1], Speedup[2],
                Match ? "yes" : "NO");
    std::fflush(stdout);
    if (Json) {
      std::fprintf(Json,
                   "%s\n    {\"name\": \"%s\", \"serial_seconds\": %.4f, "
                   "\"speedup_x2\": %.3f, \"speedup_x4\": %.3f, "
                   "\"speedup_x8\": %.3f, \"match\": %s}",
                   FirstRow ? "" : ",", Def.Name.c_str(), Serial.Seconds,
                   Speedup[0], Speedup[1], Speedup[2],
                   Match ? "true" : "false");
      FirstRow = false;
    }
  }
  if (Json) {
    std::fprintf(Json, "\n  ]\n}\n");
    std::fclose(Json);
    std::printf("# wrote %s\n", JsonPath.c_str());
  }
  return Exit;
}
