//===- bench/micro_smt.cpp - google-benchmark microbenchmarks ------------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
// Microbenchmarks for the symbolic substrate: MiniSmt satisfiability,
// Cooper quantifier elimination, weakest preconditions, and the end-to-end
// readers-writers verification condition. These quantify where the
// Table-1 analysis time goes.
//
//===----------------------------------------------------------------------===//

#include "analysis/Hoare.h"
#include "core/SignalPlacement.h"
#include "frontend/Parser.h"
#include "qe/Cooper.h"
#include "smt/MiniSmt.h"

#include <benchmark/benchmark.h>

using namespace expresso;
using namespace expresso::logic;

namespace {

const char *RWSource = R"(
monitor RWLock {
  int readers = 0;
  bool writerIn = false;
  void enterReader() { waituntil (!writerIn) { readers++; } }
  void exitReader()  { if (readers > 0) readers--; }
  void enterWriter() { waituntil (readers == 0 && !writerIn) { writerIn = true; } }
  void exitWriter()  { writerIn = false; }
}
)";

void BM_MiniSmtSatBox(benchmark::State &State) {
  for (auto _ : State) {
    TermContext C;
    smt::MiniSmt S(C);
    const Term *X = C.var("x", Sort::Int);
    const Term *Y = C.var("y", Sort::Int);
    const Term *F = C.and_({C.ge(X, C.getZero()), C.le(X, C.intConst(10)),
                            C.eq(C.add(X, Y), C.intConst(7)),
                            C.divides(3, Y)});
    benchmark::DoNotOptimize(S.checkSat(F));
  }
}
BENCHMARK(BM_MiniSmtSatBox);

void BM_MiniSmtUnsatDisequalities(benchmark::State &State) {
  for (auto _ : State) {
    TermContext C;
    smt::MiniSmt S(C);
    const Term *X = C.var("x", Sort::Int);
    std::vector<const Term *> Conj{C.ge(X, C.getZero()),
                                   C.le(X, C.intConst(4))};
    for (int64_t V = 0; V <= 4; ++V)
      Conj.push_back(C.ne(X, C.intConst(V)));
    benchmark::DoNotOptimize(S.checkSat(C.and_(std::move(Conj))));
  }
}
BENCHMARK(BM_MiniSmtUnsatDisequalities);

void BM_Z3ReadersWritersVC(benchmark::State &State) {
  if (!solver::hasZ3()) {
    State.SkipWithError("Z3 backend not built");
    return;
  }
  for (auto _ : State) {
    TermContext C;
    auto S = solver::createSolver(solver::SolverKind::Z3, C);
    const Term *Readers = C.var("readers", Sort::Int);
    const Term *WriterIn = C.var("writerIn", Sort::Bool);
    const Term *Pw = C.and_(C.eq(Readers, C.getZero()), C.not_(WriterIn));
    const Term *VC = C.implies(
        C.and_({C.ge(Readers, C.getZero()), C.not_(WriterIn), C.not_(Pw)}),
        C.not_(C.and_(C.eq(C.add(Readers, C.getOne()), C.getZero()),
                      C.not_(WriterIn))));
    benchmark::DoNotOptimize(S->checkValid(VC));
  }
}
BENCHMARK(BM_Z3ReadersWritersVC);

void BM_CooperEliminate(benchmark::State &State) {
  for (auto _ : State) {
    TermContext C;
    const Term *X = C.var("x", Sort::Int);
    const Term *Y = C.var("y", Sort::Int);
    const Term *Z = C.var("z", Sort::Int);
    const Term *F =
        C.and_({C.le(Y, X), C.le(X, Z), C.divides(2, X),
                C.ne(X, C.add(Y, C.getOne()))});
    benchmark::DoNotOptimize(qe::eliminateExists(C, F, X));
  }
}
BENCHMARK(BM_CooperEliminate);

void BM_WpReadersWriters(benchmark::State &State) {
  DiagnosticEngine Diags;
  auto M = frontend::parseMonitor(RWSource, Diags);
  for (auto _ : State) {
    TermContext C;
    DiagnosticEngine D2;
    auto Sema = frontend::analyze(*M, C, D2);
    analysis::WpEngine Wp(C, *Sema);
    const Term *Readers = C.var("readers", Sort::Int);
    const Term *Q = C.ge(Readers, C.getZero());
    for (const frontend::CcrInfo &Ccr : Sema->Ccrs)
      benchmark::DoNotOptimize(Wp.wp(Ccr.W->Body, Ccr.Parent, Q));
  }
}
BENCHMARK(BM_WpReadersWriters);

void BM_FullPipelineReadersWriters(benchmark::State &State) {
  for (auto _ : State) {
    TermContext C;
    DiagnosticEngine Diags;
    auto M = frontend::parseMonitor(RWSource, Diags);
    auto Sema = frontend::analyze(*M, C, Diags);
    auto Solver = solver::createSolver(solver::SolverKind::Default, C);
    benchmark::DoNotOptimize(core::placeSignals(C, *Sema, *Solver));
  }
}
BENCHMARK(BM_FullPipelineReadersWriters)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
