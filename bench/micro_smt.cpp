//===- bench/micro_smt.cpp - google-benchmark microbenchmarks ------------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
// Microbenchmarks for the symbolic substrate: MiniSmt satisfiability,
// Cooper quantifier elimination, weakest preconditions, and the end-to-end
// readers-writers verification condition. These quantify where the
// Table-1 analysis time goes.
//
//===----------------------------------------------------------------------===//

#include "analysis/Hoare.h"
#include "core/SignalPlacement.h"
#include "frontend/Parser.h"
#include "qe/Cooper.h"
#include "smt/MiniSmt.h"

#include <benchmark/benchmark.h>

using namespace expresso;
using namespace expresso::logic;

namespace {

const char *RWSource = R"(
monitor RWLock {
  int readers = 0;
  bool writerIn = false;
  void enterReader() { waituntil (!writerIn) { readers++; } }
  void exitReader()  { if (readers > 0) readers--; }
  void enterWriter() { waituntil (readers == 0 && !writerIn) { writerIn = true; } }
  void exitWriter()  { writerIn = false; }
}
)";

void BM_MiniSmtSatBox(benchmark::State &State) {
  for (auto _ : State) {
    TermContext C;
    smt::MiniSmt S(C);
    const Term *X = C.var("x", Sort::Int);
    const Term *Y = C.var("y", Sort::Int);
    const Term *F = C.and_({C.ge(X, C.getZero()), C.le(X, C.intConst(10)),
                            C.eq(C.add(X, Y), C.intConst(7)),
                            C.divides(3, Y)});
    benchmark::DoNotOptimize(S.checkSat(F));
  }
}
BENCHMARK(BM_MiniSmtSatBox);

void BM_MiniSmtUnsatDisequalities(benchmark::State &State) {
  for (auto _ : State) {
    TermContext C;
    smt::MiniSmt S(C);
    const Term *X = C.var("x", Sort::Int);
    std::vector<const Term *> Conj{C.ge(X, C.getZero()),
                                   C.le(X, C.intConst(4))};
    for (int64_t V = 0; V <= 4; ++V)
      Conj.push_back(C.ne(X, C.intConst(V)));
    benchmark::DoNotOptimize(S.checkSat(C.and_(std::move(Conj))));
  }
}
BENCHMARK(BM_MiniSmtUnsatDisequalities);

void BM_Z3ReadersWritersVC(benchmark::State &State) {
  if (!solver::hasZ3()) {
    State.SkipWithError("Z3 backend not built");
    return;
  }
  for (auto _ : State) {
    TermContext C;
    auto S = solver::createSolver(solver::SolverKind::Z3, C);
    const Term *Readers = C.var("readers", Sort::Int);
    const Term *WriterIn = C.var("writerIn", Sort::Bool);
    const Term *Pw = C.and_(C.eq(Readers, C.getZero()), C.not_(WriterIn));
    const Term *VC = C.implies(
        C.and_({C.ge(Readers, C.getZero()), C.not_(WriterIn), C.not_(Pw)}),
        C.not_(C.and_(C.eq(C.add(Readers, C.getOne()), C.getZero()),
                      C.not_(WriterIn))));
    benchmark::DoNotOptimize(S->checkValid(VC));
  }
}
BENCHMARK(BM_Z3ReadersWritersVC);

void BM_CooperEliminate(benchmark::State &State) {
  for (auto _ : State) {
    TermContext C;
    const Term *X = C.var("x", Sort::Int);
    const Term *Y = C.var("y", Sort::Int);
    const Term *Z = C.var("z", Sort::Int);
    const Term *F =
        C.and_({C.le(Y, X), C.le(X, Z), C.divides(2, X),
                C.ne(X, C.add(Y, C.getOne()))});
    benchmark::DoNotOptimize(qe::eliminateExists(C, F, X));
  }
}
BENCHMARK(BM_CooperEliminate);

void BM_WpReadersWriters(benchmark::State &State) {
  DiagnosticEngine Diags;
  auto M = frontend::parseMonitor(RWSource, Diags);
  for (auto _ : State) {
    TermContext C;
    DiagnosticEngine D2;
    auto Sema = frontend::analyze(*M, C, D2);
    analysis::WpEngine Wp(C, *Sema);
    const Term *Readers = C.var("readers", Sort::Int);
    const Term *Q = C.ge(Readers, C.getZero());
    for (const frontend::CcrInfo &Ccr : Sema->Ccrs)
      benchmark::DoNotOptimize(Wp.wp(Ccr.W->Body, Ccr.Parent, Q));
  }
}
BENCHMARK(BM_WpReadersWriters);

//===----------------------------------------------------------------------===//
// Session-mode discharge of a shared-prefix VC family: the micro version of
// the incremental placement engine's workload. One prefix (a conjunction of
// range and chain constraints over ten integers) is shared by twenty VC
// deltas, half unsat and half sat relative to it — the shape of one CCR's
// (predicate-class × check) family. Three discharge modes per backend:
//   one-shot:  checkSat per VC (fresh Z3 context per query — the paper
//              baseline and the --incremental=off configuration),
//   push/pop:  prefix asserted once in a session, each VC a scoped delta,
//   batched:   prefix asserted once, all VCs decided via checkSatBatch
//              (assumption literals + unsat cores on Z3).
// The win must be measured, not asserted: these rows are where it shows.
//===----------------------------------------------------------------------===//

struct SessionVcFamily {
  TermContext C;
  const Term *Prefix = nullptr;
  std::vector<const Term *> Deltas;

  SessionVcFamily() {
    std::vector<const Term *> Xs, Pre;
    for (int I = 0; I < 10; ++I) {
      const Term *X = C.var("s" + std::to_string(I), Sort::Int);
      Xs.push_back(X);
      Pre.push_back(C.ge(X, C.getZero()));
      Pre.push_back(C.le(X, C.intConst(64)));
    }
    for (int I = 0; I + 1 < 10; ++I)
      Pre.push_back(C.le(Xs[I], C.add(Xs[I + 1], C.intConst(8))));
    Prefix = C.and_(Pre);
    // Deltas conjoin the prefix, as placement VCs do (a negated Hoare VC
    // contains its precondition), so every mode solves the same formulas.
    for (int I = 0; I + 1 < 10; ++I) {
      Deltas.push_back(
          C.and_(Prefix, C.lt(C.add(Xs[I + 1], C.intConst(8)), Xs[I])));
      Deltas.push_back(C.and_(Prefix, C.eq(Xs[I], C.intConst(I))));
    }
  }
};

enum class DischargeMode { OneShot, PushPop, Batched };

void runSessionFamily(benchmark::State &State, solver::SolverKind Kind,
                      DischargeMode Mode) {
  if (Kind == solver::SolverKind::Z3 && !solver::hasZ3()) {
    State.SkipWithError("Z3 backend not built");
    return;
  }
  SessionVcFamily Family;
  auto S = solver::createSolver(Kind, Family.C);
  for (auto _ : State) {
    switch (Mode) {
    case DischargeMode::OneShot:
      for (const Term *D : Family.Deltas)
        benchmark::DoNotOptimize(S->checkSat(D));
      break;
    case DischargeMode::PushPop:
      S->push();
      S->assertTerm(Family.Prefix);
      for (const Term *D : Family.Deltas)
        benchmark::DoNotOptimize(S->checkSatAssuming({D}));
      S->pop();
      break;
    case DischargeMode::Batched:
      S->push();
      S->assertTerm(Family.Prefix);
      benchmark::DoNotOptimize(S->checkSatBatch(Family.Deltas));
      S->pop();
      break;
    }
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(Family.Deltas.size()));
}

void BM_SessionZ3OneShot(benchmark::State &State) {
  runSessionFamily(State, solver::SolverKind::Z3, DischargeMode::OneShot);
}
BENCHMARK(BM_SessionZ3OneShot)->Unit(benchmark::kMillisecond);

void BM_SessionZ3PushPop(benchmark::State &State) {
  runSessionFamily(State, solver::SolverKind::Z3, DischargeMode::PushPop);
}
BENCHMARK(BM_SessionZ3PushPop)->Unit(benchmark::kMillisecond);

void BM_SessionZ3Batched(benchmark::State &State) {
  runSessionFamily(State, solver::SolverKind::Z3, DischargeMode::Batched);
}
BENCHMARK(BM_SessionZ3Batched)->Unit(benchmark::kMillisecond);

void BM_SessionMiniOneShot(benchmark::State &State) {
  runSessionFamily(State, solver::SolverKind::Mini, DischargeMode::OneShot);
}
BENCHMARK(BM_SessionMiniOneShot)->Unit(benchmark::kMillisecond);

void BM_SessionMiniPushPop(benchmark::State &State) {
  // Snapshot sessions: expected ~1x vs one-shot — the row documents that
  // MiniSmt sessions buy correctness plumbing, not speed.
  runSessionFamily(State, solver::SolverKind::Mini, DischargeMode::PushPop);
}
BENCHMARK(BM_SessionMiniPushPop)->Unit(benchmark::kMillisecond);

void BM_SessionMiniBatched(benchmark::State &State) {
  runSessionFamily(State, solver::SolverKind::Mini, DischargeMode::Batched);
}
BENCHMARK(BM_SessionMiniBatched)->Unit(benchmark::kMillisecond);

void BM_FullPipelineReadersWriters(benchmark::State &State) {
  for (auto _ : State) {
    TermContext C;
    DiagnosticEngine Diags;
    auto M = frontend::parseMonitor(RWSource, Diags);
    auto Sema = frontend::analyze(*M, C, Diags);
    auto Solver = solver::createSolver(solver::SolverKind::Default, C);
    benchmark::DoNotOptimize(core::placeSignals(C, *Sema, *Solver));
  }
}
BENCHMARK(BM_FullPipelineReadersWriters)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
