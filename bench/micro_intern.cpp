//===- bench/micro_intern.cpp --------------------------------------------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
// Microbenchmark: term interning throughput, sharded lock-free interner vs
// the retired single-mutex design. Interning is the hottest shared path in
// the engine (every VC built on a --jobs worker, every transferTerm into a
// solver scratch context), so this is the number the TermContext sharding
// refactor has to move — and the number the CI perf gate watches.
//
// The baseline is a faithful in-file replica of the pre-refactor interner
// (one std::mutex around an unordered_map keyed by full structure, heap-
// allocated nodes), NOT the real TermContext, so the comparison stays
// honest after the refactor lands. Both sides consume identical descriptor
// streams:
//
//   hit   every thread re-interns a pre-warmed working set (pure lookup)
//   miss  every thread interns thread-private fresh structures (pure insert)
//   mix   50/50 interleave of the two
//
// Run with no arguments for the full {1,2,4,8}-thread sweep; --json=PATH
// additionally writes machine-readable rows for BENCH_table1.json. The
// sweep is deliberately standalone (no google-benchmark): the CI bench job
// installs no benchmark library, and the in-tree harness style keeps the
// binary runnable anywhere the engine builds.
//
//===----------------------------------------------------------------------===//

#include "logic/Term.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

using namespace expresso;
using namespace expresso::logic;

namespace {

//===----------------------------------------------------------------------===//
// Single-mutex baseline: the pre-refactor TermContext interner, inlined.
//===----------------------------------------------------------------------===//

struct LockedNode {
  TermKind Kind;
  Sort TheSort;
  int64_t IntVal;
  std::string Name;
  std::vector<const LockedNode *> Ops;
  uint32_t Id;
};

struct LockedKey {
  TermKind Kind;
  Sort TheSort;
  int64_t IntVal;
  std::string Name;
  std::vector<const LockedNode *> Ops;
  bool operator==(const LockedKey &O) const {
    return Kind == O.Kind && TheSort == O.TheSort && IntVal == O.IntVal &&
           Name == O.Name && Ops == O.Ops;
  }
};

struct LockedKeyHash {
  size_t operator()(const LockedKey &K) const {
    size_t H = std::hash<int>()(static_cast<int>(K.Kind) * 131 +
                                static_cast<int>(K.TheSort));
    H ^= std::hash<int64_t>()(K.IntVal) + 0x9e3779b9 + (H << 6) + (H >> 2);
    H ^= std::hash<std::string>()(K.Name) + 0x9e3779b9 + (H << 6) + (H >> 2);
    for (const LockedNode *Op : K.Ops)
      H ^= std::hash<const void *>()(Op) + 0x9e3779b9 + (H << 6) + (H >> 2);
    return H;
  }
};

/// The old design: every intern — hit or miss — takes the one mutex.
class LockedInterner {
public:
  const LockedNode *intern(TermKind K, Sort S, int64_t IntVal,
                           std::string Name,
                           std::vector<const LockedNode *> Ops) {
    std::lock_guard<std::mutex> Lock(Mu);
    LockedKey Key{K, S, IntVal, Name, Ops};
    auto It = Interned.find(Key);
    if (It != Interned.end())
      return It->second;
    auto Node = std::make_unique<LockedNode>();
    Node->Kind = K;
    Node->TheSort = S;
    Node->IntVal = IntVal;
    Node->Name = std::move(Name);
    Node->Ops = std::move(Ops);
    Node->Id = NextId++;
    const LockedNode *Raw = Node.get();
    Arena.push_back(std::move(Node));
    Interned.emplace(std::move(Key), Raw);
    return Raw;
  }

private:
  std::mutex Mu;
  std::unordered_map<LockedKey, const LockedNode *, LockedKeyHash> Interned;
  std::vector<std::unique_ptr<LockedNode>> Arena;
  uint32_t NextId = 0;
};

//===----------------------------------------------------------------------===//
// Descriptor streams — identical shapes fed to both implementations.
//===----------------------------------------------------------------------===//

/// One term to intern: le(var[VarIdx], const(ConstVal)) — two leaf interns
/// plus one interior intern, the shape mix of real VC construction.
struct Descriptor {
  unsigned VarIdx;
  int64_t ConstVal;
};

constexpr unsigned NumVars = 16;

/// Thread T's stream for one workload. Hits draw from a shared pre-warmed
/// window of constants; misses draw from a thread-private disjoint range.
std::vector<Descriptor> makeStream(const char *Mixture, unsigned Thread,
                                   size_t Ops) {
  std::vector<Descriptor> Out;
  Out.reserve(Ops);
  // Deterministic LCG so every run (and both implementations) sees the
  // exact same sequence; seeded per-thread so threads do not march in
  // lockstep over the same shared-window element.
  uint64_t State = 0x243f6a8885a308d3ULL + Thread * 0x9e3779b97f4a7c15ULL;
  auto Next = [&State]() {
    State = State * 6364136223846793005ULL + 1442695040888963407ULL;
    return State >> 16;
  };
  const int64_t SharedWindow = 4096; // pre-warmed hit universe
  const int64_t MissBase = 1'000'000 + static_cast<int64_t>(Thread) * Ops * 2;
  int64_t MissNext = MissBase;
  for (size_t I = 0; I < Ops; ++I) {
    bool Hit = std::strcmp(Mixture, "hit") == 0 ||
               (std::strcmp(Mixture, "mix") == 0 && (I & 1) == 0);
    Descriptor D;
    D.VarIdx = static_cast<unsigned>(Next() % NumVars);
    D.ConstVal = Hit ? static_cast<int64_t>(Next() % SharedWindow)
                     : MissNext++;
    Out.push_back(D);
  }
  return Out;
}

/// Pre-warms the shared hit universe so "hit" streams are pure lookups.
template <typename InternLeFn> void warm(InternLeFn InternLe) {
  for (int64_t C = 0; C < 4096; ++C)
    for (unsigned V = 0; V < NumVars; ++V)
      InternLe(V, C);
}

double secondsSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
      .count();
}

/// Runs one (implementation, threads, mixture) cell; returns ops/sec.
/// \p Impl is "sharded" or "mutex".
double runCell(const char *Impl, unsigned Threads, const char *Mixture,
               size_t OpsPerThread) {
  std::vector<std::vector<Descriptor>> Streams;
  for (unsigned T = 0; T < Threads; ++T)
    Streams.push_back(makeStream(Mixture, T, OpsPerThread));

  std::atomic<unsigned> Ready{0};
  std::atomic<bool> Go{false};
  auto Launch = [&](auto Work) {
    std::vector<std::thread> Pool;
    for (unsigned T = 0; T < Threads; ++T)
      Pool.emplace_back([&, T] {
        Ready.fetch_add(1);
        while (!Go.load(std::memory_order_acquire))
          std::this_thread::yield();
        Work(T);
      });
    while (Ready.load() != Threads)
      std::this_thread::yield();
    auto T0 = std::chrono::steady_clock::now();
    Go.store(true, std::memory_order_release);
    for (auto &Th : Pool)
      Th.join();
    return secondsSince(T0);
  };

  double Elapsed = 0;
  if (std::strcmp(Impl, "sharded") == 0) {
    TermContext C;
    std::vector<const Term *> Vars;
    for (unsigned V = 0; V < NumVars; ++V)
      Vars.push_back(C.var("v" + std::to_string(V), Sort::Int));
    warm([&](unsigned V, int64_t K) { C.le(Vars[V], C.intConst(K)); });
    Elapsed = Launch([&](unsigned T) {
      for (const Descriptor &D : Streams[T])
        C.le(Vars[D.VarIdx], C.intConst(D.ConstVal));
    });
  } else {
    LockedInterner L;
    std::vector<const LockedNode *> Vars;
    for (unsigned V = 0; V < NumVars; ++V)
      Vars.push_back(
          L.intern(TermKind::Var, Sort::Int, 0, "v" + std::to_string(V), {}));
    auto Le = [&](unsigned V, int64_t K) {
      const LockedNode *C = L.intern(TermKind::IntConst, Sort::Int, K, "", {});
      return L.intern(TermKind::Le, Sort::Bool, 0, "", {Vars[V], C});
    };
    warm(Le);
    Elapsed = Launch([&](unsigned T) {
      for (const Descriptor &D : Streams[T])
        Le(D.VarIdx, D.ConstVal);
    });
  }
  double TotalOps = static_cast<double>(OpsPerThread) * Threads;
  return TotalOps / (Elapsed > 0 ? Elapsed : 1e-9);
}

} // namespace

int main(int Argc, char **Argv) {
  size_t OpsPerThread = 200000;
  std::string JsonPath;
  for (int I = 1; I < Argc; ++I) {
    if (std::strncmp(Argv[I], "--json=", 7) == 0)
      JsonPath = Argv[I] + 7;
    else if (std::strncmp(Argv[I], "--ops=", 6) == 0)
      OpsPerThread = static_cast<size_t>(std::atoll(Argv[I] + 6));
    else if (std::strcmp(Argv[I], "--quick") == 0)
      OpsPerThread = 40000;
  }

  const unsigned ThreadCounts[] = {1, 2, 4, 8};
  const char *Mixtures[] = {"hit", "miss", "mix"};
  const unsigned Cores = std::thread::hardware_concurrency();

  std::printf("# micro_intern: term interning throughput (ops/sec)\n");
  std::printf("# %zu interns/thread, %u hardware threads; speedup = "
              "sharded/mutex at equal thread count\n",
              OpsPerThread, Cores);
  std::printf("%-6s %8s %14s %14s %9s\n", "mix", "threads", "sharded",
              "mutex", "speedup");

  std::FILE *Json = nullptr;
  if (!JsonPath.empty()) {
    Json = std::fopen(JsonPath.c_str(), "w");
    if (!Json) {
      std::fprintf(stderr, "cannot open %s for writing\n", JsonPath.c_str());
      return 1;
    }
    std::fprintf(Json,
                 "{\n  \"bench\": \"micro_intern\",\n"
                 "  \"ops_per_thread\": %zu,\n  \"hardware_threads\": %u,\n"
                 "  \"results\": [",
                 OpsPerThread, Cores);
  }

  bool FirstRow = true;
  for (const char *Mix : Mixtures) {
    for (unsigned Threads : ThreadCounts) {
      double Sharded = runCell("sharded", Threads, Mix, OpsPerThread);
      double Mutex = runCell("mutex", Threads, Mix, OpsPerThread);
      double Speedup = Sharded / (Mutex > 0 ? Mutex : 1e-9);
      std::printf("%-6s %8u %14.0f %14.0f %8.2fx\n", Mix, Threads, Sharded,
                  Mutex, Speedup);
      std::fflush(stdout);
      if (Json) {
        std::fprintf(Json,
                     "%s\n    {\"mix\": \"%s\", \"threads\": %u, "
                     "\"sharded_ops_per_sec\": %.0f, "
                     "\"mutex_ops_per_sec\": %.0f, "
                     "\"speedup_vs_mutex\": %.3f}",
                     FirstRow ? "" : ",", Mix, Threads, Sharded, Mutex,
                     Speedup);
        FirstRow = false;
      }
    }
  }
  if (Json) {
    std::fprintf(Json, "\n  ]\n}\n");
    std::fclose(Json);
    std::printf("# wrote %s\n", JsonPath.c_str());
  }
  return 0;
}
