//===- bench/ablation_incremental.cpp ------------------------------------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
// Ablation: incremental solver sessions. The paper's analysis-time numbers
// assume an incremental backend; this sweep runs every workload's serial
// placement with --incremental on and off, with the query cache on and off,
// and reports per-workload and geomean speedups. The cache-off column is
// the honest measure of the session lever itself (no memoization hiding
// repeated context setup); the run fails if any mode pair's full summary —
// Σ plus every cache counter — is not byte-identical.
//
// Uses the default backend: with Z3 this measures native sessions (the
// interesting configuration); a MiniSmt-only build degrades to snapshot
// sessions and honestly reports ~1.0x.
//
//===----------------------------------------------------------------------===//

#include "bench/Workloads.h"
#include "core/SignalPlacement.h"
#include "frontend/Parser.h"
#include "support/Timer.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>

using namespace expresso;

namespace {

struct Run {
  double Seconds = 0;
  std::string Summary;
};

Run runWith(const bench::BenchmarkDef &Def, bool Incremental, bool Cache) {
  Run R;
  logic::TermContext C;
  DiagnosticEngine Diags;
  auto M = frontend::parseMonitor(Def.Source, Diags);
  auto Sema = frontend::analyze(*M, C, Diags);
  auto Solver = solver::createSolver(solver::SolverKind::Default, C);
  core::PlacementOptions Opts;
  Opts.Incremental = Incremental;
  Opts.CacheQueries = Cache;
  WallTimer T;
  core::PlacementResult P = core::placeSignals(C, *Sema, *Solver, Opts);
  R.Seconds = T.elapsedSeconds();
  R.Summary = P.summary();
  return R;
}

} // namespace

int main() {
  std::printf("# Ablation: incremental solver sessions (%s backend, serial)\n",
              solver::defaultSolverName().c_str());
  std::printf("# speedup = one-shot time / incremental time; cache-off is "
              "the raw session lever\n");
  std::printf("%-28s %10s %10s %8s %10s %10s %8s %6s\n", "benchmark",
              "1shot(s)", "incr(s)", "spdup", "1shot$"
                                             "(s)",
              "incr$(s)", "spdup$", "match");

  int Exit = 0;
  double LogSum = 0, LogSumCache = 0;
  unsigned Rows = 0;
  for (const bench::BenchmarkDef &Def : bench::allBenchmarks()) {
    Run OffRaw = runWith(Def, /*Incremental=*/false, /*Cache=*/false);
    Run OnRaw = runWith(Def, /*Incremental=*/true, /*Cache=*/false);
    Run OffCache = runWith(Def, /*Incremental=*/false, /*Cache=*/true);
    Run OnCache = runWith(Def, /*Incremental=*/true, /*Cache=*/true);

    bool Match =
        OffRaw.Summary == OnRaw.Summary && OffCache.Summary == OnCache.Summary;
    if (!Match)
      Exit = 1;

    double Spd = OffRaw.Seconds / std::max(1e-9, OnRaw.Seconds);
    double SpdCache = OffCache.Seconds / std::max(1e-9, OnCache.Seconds);
    LogSum += std::log(std::max(1e-9, Spd));
    LogSumCache += std::log(std::max(1e-9, SpdCache));
    ++Rows;

    std::printf("%-28s %10.3f %10.3f %7.2fx %10.3f %10.3f %7.2fx %6s\n",
                Def.Name.c_str(), OffRaw.Seconds, OnRaw.Seconds, Spd,
                OffCache.Seconds, OnCache.Seconds, SpdCache,
                Match ? "yes" : "NO");
    std::fflush(stdout);
  }
  if (Rows) {
    std::printf("# geomean speedup: %.2fx (cache off), %.2fx (cache on)\n",
                std::exp(LogSum / Rows), std::exp(LogSumCache / Rows));
  }
  return Exit;
}
