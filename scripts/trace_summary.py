#!/usr/bin/env python3
"""Per-phase summary of an ``expresso --trace-out`` Chrome trace.

Reads a trace_event JSON document — either the ``{"traceEvents": [...]}``
object form the tracer emits or a bare event array — and prints one row per
span name: how many spans ran, their total wall time, and the p50/p99 span
durations. Complete ("ph": "X") events are summarized; metadata ("ph": "M")
and anything else is ignored. Timestamps are microseconds, as in the trace
format; the table prints milliseconds.

Typical use, after ``expresso --benchmark=... --trace-out=trace.json``::

    python3 scripts/trace_summary.py trace.json

which doubles as CI's structural validation of the export: malformed JSON,
a missing event list, or an event without the required keys exits 2, and an
empty trace (no "X" events at all) exits 1 — a trace that summarizes to
nothing is a broken trace.

Exit codes: 0 summarized, 1 no complete events, 2 unreadable/malformed
input.
"""

import argparse
import json
import sys


def percentile(sorted_values, q):
    """The repo's historical percentile: index floor(q * (n - 1))."""
    return sorted_values[int(q * (len(sorted_values) - 1))]


def load_events(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if isinstance(doc, dict):
        events = doc.get("traceEvents")
        if not isinstance(events, list):
            raise ValueError("no \"traceEvents\" array in trace object")
    elif isinstance(doc, list):
        events = doc
    else:
        raise ValueError("trace must be an object or an event array")
    return events


def main():
    ap = argparse.ArgumentParser(
        description="summarize a Chrome trace_event file per span name")
    ap.add_argument("trace", help="trace JSON written by --trace-out")
    ap.add_argument("--sort", choices=["total", "count", "name"],
                    default="total", help="row order (default: total time)")
    args = ap.parse_args()

    try:
        events = load_events(args.trace)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print("trace_summary: %s: %s" % (args.trace, e), file=sys.stderr)
        return 2

    durations = {}  # name -> list of dur (us)
    threads = set()
    for ev in events:
        if not isinstance(ev, dict):
            print("trace_summary: non-object trace event", file=sys.stderr)
            return 2
        if ev.get("ph") != "X":
            continue
        name = ev.get("name")
        dur = ev.get("dur")
        ts = ev.get("ts")
        if (not isinstance(name, str)
                or not isinstance(dur, (int, float))
                or not isinstance(ts, (int, float))):
            print("trace_summary: complete event missing name/ts/dur",
                  file=sys.stderr)
            return 2
        durations.setdefault(name, []).append(float(dur))
        threads.add(ev.get("tid"))

    if not durations:
        print("trace_summary: no complete (\"X\") events in %s" % args.trace,
              file=sys.stderr)
        return 1

    rows = []
    for name, ds in durations.items():
        ds.sort()
        rows.append((name, len(ds), sum(ds),
                     percentile(ds, 0.5), percentile(ds, 0.99)))
    if args.sort == "total":
        rows.sort(key=lambda r: -r[2])
    elif args.sort == "count":
        rows.sort(key=lambda r: (-r[1], r[0]))
    else:
        rows.sort(key=lambda r: r[0])

    name_w = max(len("span"), max(len(r[0]) for r in rows))
    print("%-*s %8s %12s %12s %12s" %
          (name_w, "span", "count", "total_ms", "p50_ms", "p99_ms"))
    for name, count, total, p50, p99 in rows:
        print("%-*s %8d %12.3f %12.3f %12.3f" %
              (name_w, name, count, total / 1000.0, p50 / 1000.0,
               p99 / 1000.0))
    print("%d spans across %d threads" %
          (sum(r[1] for r in rows), len(threads)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
