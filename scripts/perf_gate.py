#!/usr/bin/env python3
"""Perf-regression gate for the BENCH_table1.json trajectory.

Compares the freshly produced bench artifact against the previous run's and
fails (exit 1) when the geomean of per-row time ratios regresses by more
than the threshold in the gated column families:

  * table1 ``serial_seconds`` (cold analysis time, every row), and
  * table1 ``warm_seconds``  (warm persistent-cache rerun, rows that have it).

Rows are matched by ``name``; rows present on only one side are reported
but never gated (workloads come and go — a renamed benchmark must not wall
off CI). Timing noise on shared runners is real, which is why the gate is a
*geomean over all rows* at a generous threshold rather than a per-row
check: a genuine serialization-point regression (say, a lock reintroduced
on the interning fast path) moves every row at once, while one noisy
workload cannot trip it.

Intentional regressions ride through with ``--override`` (CI passes it when
the PR carries the ``perf-override`` label or the commit message contains
``[perf-override]``): the diff is still printed, the exit code is forced
to 0.

Exit codes: 0 pass (or overridden / no baseline), 1 regression, 2 usage or
unreadable current artifact.
"""

import argparse
import json
import math
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def rows_by_name(doc):
    return {r["name"]: r for r in doc.get("results", []) if "name" in r}


def geomean(xs):
    return math.exp(sum(math.log(x) for x in xs) / len(xs)) if xs else 1.0


def collect_ratios(prev_rows, cur_rows, field, floor_s):
    """Per-row current/previous time ratios for one column (>1 = slower).

    Rows where either side is missing the field or is below ``floor_s``
    seconds are skipped: at sub-floor durations the measurement is mostly
    process noise and a ratio of tiny numbers would dominate the geomean.
    """
    ratios, skipped = [], []
    for name in sorted(set(prev_rows) & set(cur_rows)):
        p = prev_rows[name].get(field)
        c = cur_rows[name].get(field)
        if p is None or c is None:
            continue
        if p < floor_s or c < floor_s:
            skipped.append(name)
            continue
        ratios.append((name, c / p))
    return ratios, skipped


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--current", required=True,
                    help="fresh BENCH_table1.json from this run")
    ap.add_argument("--previous", required=True,
                    help="BENCH_table1.json from the previous run's artifact")
    ap.add_argument("--threshold", type=float, default=0.20,
                    help="max tolerated geomean slowdown (0.20 = 20%%)")
    ap.add_argument("--floor-seconds", type=float, default=0.01,
                    help="ignore rows faster than this on either side")
    ap.add_argument("--override", action="store_true",
                    help="report but never fail (intentional perf change)")
    args = ap.parse_args()

    try:
        cur = load(args.current)
    except (OSError, ValueError) as e:
        print(f"perf-gate: cannot read current artifact {args.current}: {e}")
        return 2

    try:
        prev = load(args.previous)
    except (OSError, ValueError) as e:
        # First run on a branch, expired cache, schema from before the gate
        # existed: nothing to compare against is a pass, not a failure —
        # the gate guards the trajectory, it does not bootstrap it.
        print(f"perf-gate: no usable baseline ({e}); passing")
        return 0

    prev_rows, cur_rows = rows_by_name(prev), rows_by_name(cur)
    only_prev = sorted(set(prev_rows) - set(cur_rows))
    only_cur = sorted(set(cur_rows) - set(prev_rows))
    if only_prev:
        print(f"perf-gate: rows gone since previous run (not gated): {only_prev}")
    if only_cur:
        print(f"perf-gate: new rows (no baseline, not gated): {only_cur}")

    failed = False
    for field in ("serial_seconds", "warm_seconds"):
        ratios, skipped = collect_ratios(prev_rows, cur_rows, field,
                                         args.floor_seconds)
        if skipped:
            print(f"perf-gate: {field}: {len(skipped)} sub-floor rows "
                  f"ignored: {skipped}")
        if not ratios:
            print(f"perf-gate: {field}: no comparable rows; skipping column")
            continue
        g = geomean([r for _, r in ratios])
        worst = max(ratios, key=lambda nr: nr[1])
        print(f"perf-gate: {field}: geomean ratio {g:.3f} over "
              f"{len(ratios)} rows (worst: {worst[0]} at {worst[1]:.3f}); "
              f"limit {1 + args.threshold:.3f}")
        if g > 1 + args.threshold:
            print(f"perf-gate: FAIL: {field} regressed "
                  f"{(g - 1) * 100:.1f}% > {args.threshold * 100:.0f}%")
            failed = True

    if failed and args.override:
        print("perf-gate: regression overridden (perf-override); passing")
        return 0
    if failed:
        print("perf-gate: add the 'perf-override' label (or [perf-override] "
              "in the commit message) if this slowdown is intentional")
        return 1
    print("perf-gate: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
