//===- examples/semantics_explorer.cpp - §3 trace semantics in action ---------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
// Domain scenario: using the executable §3 semantics to *verify* a signal
// placement. Checks Definition 3.4 equivalence for the synthesized plan on
// bounded traces, then sabotages the plan (drops exitWriter's broadcast)
// and shows the counterexample trace the checker finds.
//
//===----------------------------------------------------------------------===//

#include "core/SignalPlacement.h"
#include "frontend/Parser.h"
#include "trace/Semantics.h"

#include <iostream>

using namespace expresso;
using namespace expresso::trace;

int main() {
  const char *Source = R"(
monitor RWLock {
  int readers = 0;
  bool writerIn = false;
  void enterReader() { waituntil (!writerIn) { readers++; } }
  void exitReader()  { if (readers > 0) readers--; }
  void enterWriter() { waituntil (readers == 0 && !writerIn) { writerIn = true; } }
  void exitWriter()  { writerIn = false; }
}
)";

  DiagnosticEngine Diags;
  auto Monitor = frontend::parseMonitor(Source, Diags);
  logic::TermContext Terms;
  auto Sema = frontend::analyze(*Monitor, Terms, Diags);
  if (!Sema) {
    std::cerr << Diags.str();
    return 1;
  }
  auto Solver = solver::createSolver(solver::SolverKind::Default, Terms);
  core::PlacementResult Placement = core::placeSignals(Terms, *Sema, *Solver);
  runtime::SignalPlan Plan = runtime::SignalPlan::fromPlacement(Placement);

  // Scenario: one reader and one writer want in; a writer currently holds
  // the lock and will exit.
  MonitorState Initial;
  Initial.Shared = frontend::initialState(*Monitor);
  Initial.Shared["writerIn"] = logic::Value::ofBool(true);
  std::vector<ThreadTask> Tasks = {
      {1, Monitor->findMethod("enterReader"), {}},
      {2, Monitor->findMethod("enterWriter"), {}},
      {3, Monitor->findMethod("exitWriter"), {}},
  };

  std::cout << "checking Definition 3.4 equivalence on all bounded traces "
               "(<= 8 events)...\n";
  EquivalenceResult Ok =
      checkEquivalenceBounded(*Sema, Plan, Tasks, Initial, 8);
  std::cout << "  synthesized plan: "
            << (Ok.Equivalent ? "EQUIVALENT" : "NOT equivalent") << " ("
            << Ok.TracesChecked << " traces checked)\n";

  // Sabotage: drop every notification from exitWriter.
  runtime::SignalPlan Broken = Plan;
  Broken.Entries.erase(&Monitor->findMethod("exitWriter")->Body[0]);
  EquivalenceResult Bad =
      checkEquivalenceBounded(*Sema, Broken, Tasks, Initial, 8);
  std::cout << "  sabotaged plan:   "
            << (Bad.Equivalent ? "EQUIVALENT (?!)" : "NOT equivalent")
            << "\n";
  if (!Bad.Equivalent)
    std::cout << "  counterexample: " << Bad.CounterExample << "\n"
              << "  (a normalized implicit-signal trace the explicit "
                 "monitor cannot follow:\n   the blocked thread is never "
                 "notified — exactly the lost-wakeup bug the\n   paper's "
                 "equivalence theorem rules out)\n";
  return Bad.Equivalent ? 1 : 0;
}
