//===- examples/quickstart.cpp - The §2 walkthrough, end to end ---------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
// Quickstart: feed the paper's Figure 1 (implicit-signal readers-writers
// lock) through the full pipeline and print (a) the inferred monitor
// invariant, (b) the placement decisions with their Hoare-triple rationale,
// (c) the target-language IR, and (d) generated C++ — the analogue of the
// paper's Figure 2.
//
//===----------------------------------------------------------------------===//

#include "codegen/Codegen.h"
#include "core/SignalPlacement.h"
#include "frontend/Parser.h"
#include "logic/Printer.h"

#include <iostream>

using namespace expresso;

int main() {
  // Figure 1 of the paper, verbatim modulo syntax.
  const char *Source = R"(
monitor RWLock {
  int readers = 0;
  bool writerIn = false;

  void enterReader() { waituntil (!writerIn) { readers++; } }
  void exitReader()  { if (readers > 0) readers--; }
  void enterWriter() { waituntil (readers == 0 && !writerIn) { writerIn = true; } }
  void exitWriter()  { writerIn = false; }
}
)";

  // 1. Parse and analyze.
  DiagnosticEngine Diags;
  auto Monitor = frontend::parseMonitor(Source, Diags);
  if (!Monitor) {
    std::cerr << Diags.str();
    return 1;
  }
  logic::TermContext Terms;
  auto Sema = frontend::analyze(*Monitor, Terms, Diags);
  if (!Sema) {
    std::cerr << Diags.str();
    return 1;
  }

  // 2. Place signals (invariant inference runs inside).
  auto Solver = solver::createSolver(solver::SolverKind::Default, Terms);
  core::PlacementResult Result = core::placeSignals(Terms, *Sema, *Solver);

  std::cout << "== inferred monitor invariant ==\n"
            << logic::printTerm(Result.Invariant) << "\n\n";
  std::cout << "== placement decisions ==\n" << Result.summary() << "\n";
  std::cout << "== target-language IR (paper §3.3) ==\n"
            << codegen::printTargetIr(Result) << "\n";
  std::cout << "== generated C++ (the Figure 2 analogue) ==\n"
            << codegen::emitCpp(Result);
  return 0;
}
