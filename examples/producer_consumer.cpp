//===- examples/producer_consumer.cpp - Running a transformed monitor ---------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
// Domain scenario: a bounded producer/consumer queue. The implicit-signal
// monitor is transformed by PlaceSignals and then EXECUTED with real
// threads on the runtime substrate, side by side with the AutoSynch-style
// run-time engine. The printed statistics show why static placement wins:
// far fewer run-time predicate evaluations.
//
//===----------------------------------------------------------------------===//

#include "core/SignalPlacement.h"
#include "frontend/Parser.h"
#include "runtime/Engine.h"

#include <iostream>
#include <thread>
#include <vector>

using namespace expresso;

int main() {
  const char *Source = R"(
monitor BoundedBuffer {
  const int capacity;
  int count = 0;
  requires capacity > 0;
  void put()  { waituntil (count < capacity) { count++; } }
  void take() { waituntil (count > 0) { count--; } }
}
)";

  DiagnosticEngine Diags;
  auto Monitor = frontend::parseMonitor(Source, Diags);
  logic::TermContext Terms;
  auto Sema = frontend::analyze(*Monitor, Terms, Diags);
  if (!Sema) {
    std::cerr << Diags.str();
    return 1;
  }
  auto Solver = solver::createSolver(solver::SolverKind::Default, Terms);
  core::PlacementResult Placement = core::placeSignals(Terms, *Sema, *Solver);
  std::cout << Placement.summary() << "\n";

  // Run 4 producers + 4 consumers against both engines.
  logic::Assignment Config{{"capacity", logic::Value::ofInt(4)}};
  auto runWith = [&](runtime::MonitorEngine &Engine) {
    constexpr unsigned Threads = 8, Ops = 2000;
    std::vector<std::thread> Workers;
    for (unsigned T = 0; T < Threads; ++T) {
      Workers.emplace_back([&Engine, T] {
        for (unsigned I = 0; I < Ops; ++I)
          Engine.call(T % 2 == 0 ? "put" : "take");
      });
    }
    for (auto &W : Workers)
      W.join();
    runtime::EngineStats S = Engine.stats();
    std::cout << "  " << Engine.name() << ": calls=" << S.Calls
              << " blocks=" << S.Blocks << " wakeups=" << S.Wakeups
              << " predicate-evals=" << S.PredicateEvals
              << " (final count=" << Engine.snapshot().at("count").asInt()
              << ")\n";
  };

  std::cout << "running 4 producers + 4 consumers, 2000 ops each:\n";
  auto Expresso = runtime::createExplicitEngine(
      *Sema, runtime::SignalPlan::fromPlacement(Placement), Config);
  runWith(*Expresso);
  auto AutoSynch = runtime::createAutoSynchEngine(*Sema, Config);
  runWith(*AutoSynch);
  auto Naive = runtime::createNaiveEngine(*Sema, Config);
  runWith(*Naive);
  std::cout << "\nnote how the statically-placed signals need far fewer "
               "run-time predicate\nevaluations than the AutoSynch-style "
               "engine, and far fewer wakeups than the\nnaive broadcast "
               "monitor.\n";
  return 0;
}
