//===- examples/custom_monitor.cpp - Compile a user's .mon file ---------------===//
//
// Part of expresso-cpp, a reproduction of "Symbolic Reasoning for Automatic
// Signal Placement" (PLDI 2018).
//
// Domain scenario: the library as a downstream user would embed it — read a
// monitor definition from disk (a Gradle-style work throttle by default),
// run the pipeline, and emit both Java (the paper's target) and C++.
//
//   ./custom_monitor [path/to/monitor.mon]
//
//===----------------------------------------------------------------------===//

#include "codegen/Codegen.h"
#include "core/SignalPlacement.h"
#include "frontend/Parser.h"

#include <fstream>
#include <iostream>
#include <sstream>

using namespace expresso;

static const char *FallbackSource = R"(
// A work-stealing throttle: leases are bounded, stop drains everything.
monitor WorkThrottle {
  const int maxLeases;
  int leases = 0;
  bool draining = false;
  requires maxLeases > 0;

  void acquire() {
    waituntil (leases < maxLeases && !draining) { leases++; }
  }
  void release() {
    leases--;
  }
  void drain() {
    draining = true;
    waituntil (leases == 0) { draining = false; }
  }
}
)";

int main(int Argc, char **Argv) {
  std::string Source = FallbackSource;
  if (Argc > 1) {
    std::ifstream In(Argv[1]);
    if (!In) {
      std::cerr << "cannot open " << Argv[1] << "\n";
      return 1;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Source = Buf.str();
  }

  DiagnosticEngine Diags;
  auto Monitor = frontend::parseMonitor(Source, Diags);
  if (!Monitor) {
    std::cerr << Diags.str();
    return 1;
  }
  logic::TermContext Terms;
  auto Sema = frontend::analyze(*Monitor, Terms, Diags);
  if (!Sema) {
    std::cerr << Diags.str();
    return 1;
  }
  auto Solver = solver::createSolver(solver::SolverKind::Default, Terms);
  core::PlacementResult Result = core::placeSignals(Terms, *Sema, *Solver);

  std::cout << "== placement ==\n" << Result.summary() << "\n";
  std::cout << "== Java (paper §6 target) ==\n"
            << codegen::emitJava(Result) << "\n";
  std::cout << "== C++ ==\n" << codegen::emitCpp(Result);
  return 0;
}
